(* Cross-job-count determinism of the parallel hot paths: Monte-Carlo
   sampling, branch-and-bound, constraint reduction and the full ILP
   flow must produce bit-identical results at any pool width. *)

module BB = Fbb_ilp.Branch_bound
module S = Fbb_lp.Simplex

let at_jobs n f =
  let prev = Fbb_par.Pool.jobs () in
  Fbb_par.Pool.set_jobs n;
  Fun.protect ~finally:(fun () -> Fbb_par.Pool.set_jobs prev) f

let check_eq name a b = Alcotest.(check bool) name true (a = b)

(* ----- Monte-Carlo ------------------------------------------------------ *)

let test_montecarlo () =
  let pl = Lazy.force Tsupport.small_placement in
  let run () =
    Fbb_variation.Montecarlo.run ~seed:7 ~samples:6 ~sigma:0.05 pl
  in
  let a = at_jobs 1 run in
  let b = at_jobs 4 run in
  (* Record equality covers every yield percentage and leakage statistic
     down to the last float bit. *)
  check_eq "mc records bit-identical jobs=1 vs 4" a b

(* ----- branch and bound ------------------------------------------------- *)

let c terms relation rhs = { S.terms; relation; rhs }

let random_problem rng =
  let open Fbb_util in
  let n = 3 + Rng.int rng 8 in
  let m = 1 + Rng.int rng 6 in
  let minimize = Array.init n (fun _ -> float_of_int (1 + Rng.int rng 20)) in
  let constraints =
    List.init m (fun _ ->
        let terms =
          List.init n (fun v -> (v, float_of_int (Rng.int rng 4)))
          |> List.filter (fun (_, co) -> co > 0.0)
        in
        if terms = [] then c [ (0, 1.0) ] S.Ge 0.0
        else
          let total = List.fold_left (fun a (_, co) -> a +. co) 0.0 terms in
          c terms S.Ge (Float.of_int (Rng.int rng (int_of_float total + 1))))
  in
  { BB.num_vars = n; minimize; constraints }

let test_branch_bound () =
  let rng = Fbb_util.Rng.create ~seed:321 in
  for i = 1 to 25 do
    let p = random_problem rng in
    let a = at_jobs 1 (fun () -> BB.solve p) in
    let b = at_jobs 4 (fun () -> BB.solve p) in
    let tag fmt = Printf.sprintf fmt i in
    check_eq (tag "status equal (case %d)") a.BB.status b.BB.status;
    (* [best] carries the winning 0/1 vector: equality means the same
       solution, not merely the same objective, at both widths. *)
    check_eq (tag "incumbent equal (case %d)") a.BB.best b.BB.best;
    check_eq (tag "node count equal (case %d)") a.BB.nodes b.BB.nodes
  done

(* ----- constraint reduction and the full ILP flow ----------------------- *)

let test_reduce_paths () =
  let p = Tsupport.small_problem () in
  let a = at_jobs 1 (fun () -> Fbb_core.Ilp_opt.reduce_paths p) in
  let b = at_jobs 4 (fun () -> Fbb_core.Ilp_opt.reduce_paths p) in
  check_eq "kept set identical jobs=1 vs 4" a b;
  Alcotest.(check bool) "reduction keeps at least one constraint" true
    (a <> [])

let test_ilp_flow () =
  let p = Tsupport.small_problem ~beta:0.05 () in
  let run () =
    let r = Fbb_core.Ilp_opt.optimize p in
    (r.Fbb_core.Ilp_opt.levels, r.Fbb_core.Ilp_opt.leakage_nw,
     r.Fbb_core.Ilp_opt.proved_optimal, r.Fbb_core.Ilp_opt.nodes)
  in
  let a = at_jobs 1 run in
  let b = at_jobs 4 run in
  check_eq "ilp assignment/leakage/nodes identical jobs=1 vs 4" a b

(* ----- the differential fuzz harness ------------------------------------ *)

let test_differential_harness () =
  (* The whole oracle/heuristic/B&B/refine cross-check — the fuzzer's
     inner loop — must produce identical verdicts at any pool width,
     both the solver outputs and the (hopefully empty) failure lists. *)
  let module D = Fbb_oracle.Differential in
  let cases =
    [
      Fbb_oracle.Case.make ~seed:11 ~gates:60 ~rows:3 ();
      Fbb_oracle.Case.make ~beta:0.08 ~seed:23 ~gates:90 ~rows:4 ();
      Fbb_oracle.Case.make ~beta:0.05 ~max_clusters:3 ~level_stride:2 ~seed:37
        ~gates:120 ~rows:5 ();
    ]
  in
  List.iter
    (fun c ->
      let a = at_jobs 1 (fun () -> D.run c) in
      let b = at_jobs 4 (fun () -> D.run c) in
      let tag s = Printf.sprintf "%s (%s)" s (Fbb_oracle.Case.name c) in
      check_eq (tag "differential outputs identical jobs=1 vs 4")
        a.D.outputs b.D.outputs;
      check_eq (tag "failure lists identical jobs=1 vs 4")
        a.D.failures b.D.failures)
    cases

(* ----- budget-bounded anytime runs -------------------------------------- *)

module Budget = Fbb_util.Budget

let test_budgeted_branch_bound () =
  (* A work budget truncates the B&B at a deterministic wave boundary:
     the anytime incumbent, node count and work consumed must be
     bit-identical at any pool width. *)
  let rng = Fbb_util.Rng.create ~seed:654 in
  for i = 1 to 10 do
    let p = random_problem rng in
    let run jobs =
      at_jobs jobs (fun () ->
          let budget = Budget.create ~work:25 () in
          let r = BB.solve ~budget p in
          (r.BB.status, r.BB.best, r.BB.nodes, Budget.work_used budget))
    in
    let a = run 1 and b = run 4 in
    check_eq
      (Printf.sprintf "budgeted bb identical jobs=1 vs 4 (case %d)" i)
      a b
  done

let test_budgeted_montecarlo () =
  let pl = Lazy.force Tsupport.small_placement in
  let run jobs =
    at_jobs jobs (fun () ->
        Fbb_variation.Montecarlo.run
          ~budget:(Budget.create ~work:2 ())
          ~seed:7 ~samples:64 ~sigma:0.05 pl)
  in
  let a = run 1 and b = run 4 in
  check_eq "truncated mc records bit-identical jobs=1 vs 4" a b;
  Alcotest.(check bool) "truncation engaged" false
    a.Fbb_variation.Montecarlo.complete;
  Alcotest.(check bool) "a strict prefix was evaluated" true
    (a.Fbb_variation.Montecarlo.samples > 0
    && a.Fbb_variation.Montecarlo.samples < 64)

let test_cascade () =
  (* The whole degradation cascade - stage choice, statuses and work
     accounting - must be identical at any width, for every budget
     regime (elapsed_s is wall clock and excluded). *)
  let p = Tsupport.small_problem () in
  List.iter
    (fun work ->
      let run jobs =
        at_jobs jobs (fun () ->
            let r =
              Fbb_core.Cascade.solve ~budget:(Budget.create ~work ()) p
            in
            ( r.Fbb_core.Cascade.outcome,
              r.Fbb_core.Cascade.exhausted,
              List.map
                (fun a ->
                  ( a.Fbb_core.Cascade.stage,
                    a.Fbb_core.Cascade.status,
                    a.Fbb_core.Cascade.leakage_nw,
                    a.Fbb_core.Cascade.work_spent ))
                r.Fbb_core.Cascade.attempts ))
      in
      let a = run 1 and b = run 4 in
      check_eq
        (Printf.sprintf "cascade identical jobs=1 vs 4 (work=%d)" work)
        a b)
    [ 0; 5; 50; 5000 ]

(* ----- the serving plane ------------------------------------------------ *)

let test_serve_script () =
  (* End to end through fbbd: a fixed request script over a live
     server — admission, same-netlist batching, budgeted cascade —
     must yield bit-identical response payloads per request id at any
     pool width (elapsed_ms, the only wall-clock field, is zeroed by
     the canonicalizer). *)
  let a = Test_serve.script_replay ~jobs:1 () in
  let b = Test_serve.script_replay ~jobs:4 () in
  check_eq "serve script payloads bit-identical jobs=1 vs 4" a b

let test_serve_script_recorded () =
  (* The flight recorder is observation-only: replaying the script
     with the recorder sink capturing every span must leave payloads
     bit-identical to the recorder-off baseline at any pool width,
     while still producing a record per solve. *)
  let baseline = Test_serve.script_replay ~jobs:1 () in
  let recorded jobs =
    Fbb_obs.Flight.clear ();
    Fbb_obs.Sink.with_installed (Fbb_obs.Flight.sink ()) @@ fun () ->
    Test_serve.script_replay ~jobs ()
  in
  let a = recorded 1 in
  check_eq "recorder-on payloads match baseline jobs=1" baseline a;
  Alcotest.(check bool) "every solve recorded" true
    (Fbb_obs.Flight.size () >= List.length baseline);
  let b = recorded 4 in
  check_eq "recorder-on payloads match baseline jobs=4" baseline b;
  Fbb_obs.Flight.clear ()

(* ----- live telemetry is read-only -------------------------------------- *)

let test_cascade_with_telemetry () =
  (* The telemetry plane only reads solver state, so running a traced
     cascade under a live sampler + /metrics endpoint must not perturb
     results: bit-identical at jobs 1 vs 4, telemetry on, against the
     telemetry-off baseline. Work budgets (not wall deadlines) keep the
     truncation point deterministic. *)
  let p = Tsupport.small_problem () in
  let solve () =
    let r = Fbb_core.Cascade.solve ~budget:(Budget.create ~work:50 ()) p in
    ( r.Fbb_core.Cascade.outcome,
      r.Fbb_core.Cascade.exhausted,
      List.map
        (fun a ->
          ( a.Fbb_core.Cascade.stage,
            a.Fbb_core.Cascade.status,
            a.Fbb_core.Cascade.leakage_nw,
            a.Fbb_core.Cascade.work_spent ))
        r.Fbb_core.Cascade.attempts )
  in
  let baseline = at_jobs 1 solve in
  let with_telemetry jobs =
    at_jobs jobs (fun () ->
        let sampler = Fbb_obs.Telemetry.start ~tick_s:0.01 () in
        match Fbb_obs.Telemetry.serve ~port:0 () with
        | Error m -> Alcotest.failf "serve: %s" m
        | Ok srv ->
          Fun.protect ~finally:(fun () ->
              Fbb_obs.Telemetry.shutdown srv;
              Fbb_obs.Telemetry.stop sampler)
          @@ fun () ->
          Fbb_obs.Sink.with_installed Fbb_obs.Sink.null @@ fun () ->
          Fbb_obs.Context.with_ (Fbb_obs.Context.make ()) @@ fun () ->
          let r = solve () in
          (* Scrape mid-session so the endpoint demonstrably served
             while the solver ran. *)
          let url =
            Printf.sprintf "http://127.0.0.1:%d/metrics"
              (Fbb_obs.Telemetry.port srv)
          in
          (match Fbb_obs.Telemetry.http_get url with
          | Ok _ -> ()
          | Error m -> Alcotest.failf "live scrape failed: %s" m);
          r)
  in
  check_eq "telemetry jobs=1 matches baseline" baseline (with_telemetry 1);
  check_eq "telemetry jobs=4 matches baseline" baseline (with_telemetry 4)

let suite =
  [
    Alcotest.test_case "montecarlo" `Quick test_montecarlo;
    Alcotest.test_case "budgeted branch and bound" `Quick
      test_budgeted_branch_bound;
    Alcotest.test_case "budgeted montecarlo" `Quick test_budgeted_montecarlo;
    Alcotest.test_case "cascade" `Quick test_cascade;
    Alcotest.test_case "cascade with live telemetry" `Quick
      test_cascade_with_telemetry;
    Alcotest.test_case "serve script replay" `Quick test_serve_script;
    Alcotest.test_case "serve script replay with flight recorder" `Quick
      test_serve_script_recorded;
    Alcotest.test_case "branch and bound" `Quick test_branch_bound;
    Alcotest.test_case "reduce_paths" `Quick test_reduce_paths;
    Alcotest.test_case "ilp flow" `Quick test_ilp_flow;
    Alcotest.test_case "differential harness" `Quick test_differential_harness;
  ]
