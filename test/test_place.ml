(* Tests for Fbb_place: FM partitioner and the row placer. *)

module Pt = Fbb_place.Partition
module Pl = Fbb_place.Placement
module N = Fbb_netlist.Netlist

let ladder_graph n =
  (* 2 x n grid: cutting between the two columns costs n nets; FM should
     find the 2-net cut between top and bottom halves instead. *)
  let nets = ref [] in
  for i = 0 to n - 2 do
    nets := [| i; i + 1 |] :: !nets;
    nets := [| n + i; n + i + 1 |] :: !nets
  done;
  for i = 0 to n - 1 do
    nets := [| i; n + i |] :: !nets
  done;
  { Pt.nv = 2 * n; weights = Array.make (2 * n) 1; nets = Array.of_list !nets }

let test_fm_finds_good_cut () =
  let h = ladder_graph 16 in
  let side = Pt.bisect ~seed:3 h in
  let cut = Pt.cut_size h side in
  Alcotest.(check bool) (Printf.sprintf "cut %d <= 6" cut) true (cut <= 6)

let test_fm_balance () =
  let h = ladder_graph 16 in
  let side = Pt.bisect ~balance:0.1 h in
  let w1 = Array.fold_left (fun a s -> if s then a + 1 else a) 0 side in
  Alcotest.(check bool) "balanced" true (w1 >= 12 && w1 <= 20)

let test_fm_deterministic () =
  let h = ladder_graph 10 in
  let a = Pt.bisect ~seed:5 h in
  let b = Pt.bisect ~seed:5 h in
  Alcotest.(check bool) "same result" true (a = b)

let test_fm_empty_and_single () =
  let h0 = { Pt.nv = 0; weights = [||]; nets = [||] } in
  Alcotest.(check int) "empty" 0 (Array.length (Pt.bisect h0));
  let h1 = { Pt.nv = 1; weights = [| 3 |]; nets = [||] } in
  Alcotest.(check int) "single" 1 (Array.length (Pt.bisect h1))

let test_cut_size () =
  let h =
    { Pt.nv = 4; weights = Array.make 4 1; nets = [| [| 0; 1 |]; [| 2; 3 |]; [| 1; 2 |] |] }
  in
  let side = [| false; false; true; true |] in
  Alcotest.(check int) "one crossing net" 1 (Pt.cut_size h side)

let placement () = Lazy.force Tsupport.small_placement

let test_all_gates_placed () =
  let pl = placement () in
  let nl = Pl.netlist pl in
  Array.iter
    (fun g ->
      let r = Pl.row_of pl g in
      Alcotest.(check bool) "row assigned" true (r >= 0 && r < Pl.num_rows pl))
    (N.gates nl);
  Array.iter
    (fun i -> Alcotest.(check int) "ports unplaced" (-1) (Pl.row_of pl i))
    (N.inputs nl)

let test_row_count_target () =
  Alcotest.(check int) "6 rows" 6 (Pl.num_rows (placement ()))

let test_rows_within_capacity () =
  let pl = placement () in
  for r = 0 to Pl.num_rows pl - 1 do
    Alcotest.(check bool) "within capacity" true
      (Pl.row_used_sites pl r <= Pl.row_capacity_sites pl)
  done

let test_no_site_overlap () =
  let pl = placement () in
  let nl = Pl.netlist pl in
  for r = 0 to Pl.num_rows pl - 1 do
    let spans =
      Array.to_list (Pl.row_gates pl r)
      |> List.map (fun g ->
             let w = (N.cell nl g).Fbb_tech.Cell_library.width_sites in
             (Pl.site_of pl g, Pl.site_of pl g + w))
      |> List.sort compare
    in
    let rec check = function
      | (_, e1) :: ((s2, _) :: _ as rest) ->
        Alcotest.(check bool) "no overlap" true (s2 >= e1);
        check rest
      | [ _ ] | [] -> ()
    in
    check spans
  done

let test_row_partition_of_gates () =
  let pl = placement () in
  let nl = Pl.netlist pl in
  let total =
    List.init (Pl.num_rows pl) (fun r -> Array.length (Pl.row_gates pl r))
    |> List.fold_left ( + ) 0
  in
  Alcotest.(check int) "every gate in exactly one row" (N.gate_count nl) total;
  for r = 0 to Pl.num_rows pl - 1 do
    Array.iter
      (fun g -> Alcotest.(check int) "row_of matches" r (Pl.row_of pl g))
      (Pl.row_gates pl r)
  done

let test_determinism () =
  let nl = Fbb_netlist.Generators.alu ~bits:4 () in
  let a = Pl.place ~target_rows:4 ~seed:9 nl in
  let b = Pl.place ~target_rows:4 ~seed:9 nl in
  Array.iter
    (fun g ->
      Alcotest.(check int) "same row" (Pl.row_of a g) (Pl.row_of b g))
    (N.gates nl)

let test_locality_beats_random () =
  (* The bisection order must beat an identity-order placement on HPWL. *)
  let nl = Fbb_netlist.Generators.alu ~bits:6 () in
  let placed = Pl.place ~target_rows:8 nl in
  let hpwl = Pl.half_perimeter_wirelength placed in
  (* Identity-order baseline: emulate by placing with a placer seed that
     cannot help — instead, compare against the die semi-perimeter scaled
     by net count, a generous random-placement proxy. *)
  let nets = Array.length (N.gates nl) + Array.length (N.inputs nl) in
  let random_expectation =
    float_of_int nets
    *. (Pl.die_width_um placed +. Pl.die_height_um placed)
    /. 3.0
  in
  Alcotest.(check bool)
    (Printf.sprintf "hpwl %.0f < random proxy %.0f" hpwl random_expectation)
    true (hpwl < random_expectation)

let test_utilization_bounds () =
  let nl = Fbb_netlist.Generators.alu ~bits:4 () in
  Alcotest.(check bool) "zero utilization rejected" true
    (match Pl.place ~utilization:0.0 nl with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "u>1 rejected" true
    (match Pl.place ~utilization:1.5 nl with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_default_rows_squarish () =
  let nl = Fbb_netlist.Generators.alu ~bits:8 ~stages:2 () in
  let pl = Pl.place nl in
  let aspect = Pl.die_width_um pl /. Pl.die_height_um pl in
  Alcotest.(check bool)
    (Printf.sprintf "aspect %.2f near 1" aspect)
    true
    (aspect > 0.5 && aspect < 2.0)

let test_geometry () =
  let pl = placement () in
  Alcotest.(check (float 1e-9)) "die width"
    (float_of_int (Pl.row_capacity_sites pl) *. Pl.site_width_um)
    (Pl.die_width_um pl);
  Alcotest.(check (float 1e-9)) "die height"
    (float_of_int (Pl.num_rows pl) *. Pl.row_height_um)
    (Pl.die_height_um pl);
  for r = 0 to Pl.num_rows pl - 1 do
    let u = Pl.row_utilization pl r in
    Alcotest.(check bool) "utilization in (0,1]" true (u > 0.0 && u <= 1.0)
  done

let test_rows_balanced () =
  (* The proportional fill must leave no straggler rows. *)
  let pl = placement () in
  let min_u = ref 1.0 and max_u = ref 0.0 in
  for r = 0 to Pl.num_rows pl - 1 do
    min_u := Float.min !min_u (Pl.row_utilization pl r);
    max_u := Float.max !max_u (Pl.row_utilization pl r)
  done;
  Alcotest.(check bool)
    (Printf.sprintf "balanced fill (%.2f .. %.2f)" !min_u !max_u)
    true
    (!max_u -. !min_u < 0.25)

let suite =
  [
    ("fm finds a good cut", `Quick, test_fm_finds_good_cut);
    ("fm respects balance", `Quick, test_fm_balance);
    ("fm deterministic", `Quick, test_fm_deterministic);
    ("fm degenerate inputs", `Quick, test_fm_empty_and_single);
    ("cut size", `Quick, test_cut_size);
    ("all gates placed", `Quick, test_all_gates_placed);
    ("row count target", `Quick, test_row_count_target);
    ("rows within capacity", `Quick, test_rows_within_capacity);
    ("no site overlap", `Quick, test_no_site_overlap);
    ("rows partition gates", `Quick, test_row_partition_of_gates);
    ("placement deterministic", `Quick, test_determinism);
    ("locality beats random proxy", `Quick, test_locality_beats_random);
    ("utilization bounds", `Quick, test_utilization_bounds);
    ("default floorplan squarish", `Quick, test_default_rows_squarish);
    ("geometry accessors", `Quick, test_geometry);
    ("rows balanced", `Quick, test_rows_balanced);
  ]
