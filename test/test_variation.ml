(* Tests for Fbb_variation: derate models, timing sensors, and the
   closed-loop tuning flow (which doubles as an end-to-end check of the
   optimizer against independent signoff STA). *)

module M = Fbb_variation.Models
module Sensor = Fbb_variation.Sensor
module Tuning = Fbb_variation.Tuning
module T = Fbb_sta.Timing
module Pl = Fbb_place.Placement

let placement () = Lazy.force Tsupport.small_placement

let test_uniform () =
  Alcotest.(check (float 1e-12)) "uniform" 1.05 (M.uniform 0.05 3)

let test_die_to_die_stats () =
  let rng = Fbb_util.Rng.create ~seed:1 in
  let xs = Array.init 5_000 (fun _ -> M.die_to_die rng ~sigma:0.05) in
  Alcotest.(check bool) "mean near 1" true
    (Float.abs (Fbb_util.Stats.mean xs -. 1.0) < 0.01);
  Array.iter
    (fun x -> Alcotest.(check bool) "clamped" true (x >= 0.7 && x <= 1.5))
    xs

let test_within_die_per_gate () =
  let nl = Pl.netlist (placement ()) in
  let rng = Fbb_util.Rng.create ~seed:2 in
  let f = M.within_die rng ~sigma:0.04 nl in
  (* Deterministic per gate, varies across gates. *)
  let g0 = (Fbb_netlist.Netlist.gates nl).(0) in
  let g1 = (Fbb_netlist.Netlist.gates nl).(1) in
  Alcotest.(check (float 1e-12)) "stable" (f g0) (f g0);
  Alcotest.(check bool) "varies" true (f g0 <> f g1)

let test_spatial_correlation () =
  let pl = placement () in
  let rng = Fbb_util.Rng.create ~seed:3 in
  let f = M.spatially_correlated rng ~sigma:0.06 pl in
  (* Gates in the same row must be more similar than gates in far rows:
     compare within-row variance to cross-design variance. *)
  let nl = Pl.netlist pl in
  let by_row = Array.make (Pl.num_rows pl) [] in
  Array.iter
    (fun g ->
      let r = Pl.row_of pl g in
      if r >= 0 then by_row.(r) <- f g :: by_row.(r))
    (Fbb_netlist.Netlist.gates nl);
  let row_means =
    Array.map
      (fun l -> Fbb_util.Stats.mean (Array.of_list l))
      by_row
  in
  let spread, _ = Fbb_util.Stats.min_max row_means in
  let spread_hi = snd (Fbb_util.Stats.min_max row_means) in
  Alcotest.(check bool) "regional profile varies across rows" true
    (spread_hi -. spread > 0.005)

let test_temperature () =
  Alcotest.(check (float 1e-12)) "ref" 1.0 (M.temperature_derate 25.0);
  Alcotest.(check bool) "hotter is slower" true
    (M.temperature_derate 105.0 > 1.05)

let test_aging () =
  Alcotest.(check (float 1e-12)) "fresh" 1.0 (M.nbti_aging_derate 0.0);
  let y1 = M.nbti_aging_derate 1.0 in
  let y10 = M.nbti_aging_derate 10.0 in
  Alcotest.(check bool) "ages" true (y1 > 1.0);
  Alcotest.(check bool) "keeps aging" true (y10 > y1);
  Alcotest.(check bool) "sublinear" true (y10 -. y1 < 10.0 *. (y1 -. 1.0))

let test_combine () =
  let f = M.combine [ M.uniform 0.1; M.uniform 0.1 ] in
  Alcotest.(check (float 1e-9)) "product" 1.21 (f 0)

let test_sensors_uniform_slowdown () =
  (* Under a uniform derate both sensors must read exactly beta. *)
  let pl = placement () in
  let nl = Pl.netlist pl in
  let nominal = T.analyze nl in
  let degraded = T.analyze ~derate:(M.uniform 0.07) nl in
  let r1 = Sensor.critical_path_replica ~nominal ~degraded in
  let r2 = Sensor.in_situ_monitors ~nominal ~degraded in
  Alcotest.(check (float 1e-6)) "replica reads beta" 0.07 r1.Sensor.slowdown;
  Alcotest.(check (float 1e-6)) "in-situ reads beta" 0.07 r2.Sensor.slowdown;
  Alcotest.(check bool) "alarms raised" true (r2.Sensor.alarms > 0)

let test_sensor_no_slowdown () =
  let pl = placement () in
  let nl = Pl.netlist pl in
  let nominal = T.analyze nl in
  let r = Sensor.in_situ_monitors ~nominal ~degraded:nominal in
  Alcotest.(check (float 1e-9)) "zero" 0.0 r.Sensor.slowdown;
  Alcotest.(check int) "no alarms" 0 r.Sensor.alarms

let test_replica_misses_offpath_slowdown () =
  (* Degrade only gates off the nominal critical path: the replica reads
     ~0 while the in-situ monitors see the real slowdown. *)
  let pl = placement () in
  let nl = Pl.netlist pl in
  let nominal = T.analyze nl in
  let critical = Hashtbl.create 64 in
  List.iter (fun g -> Hashtbl.replace critical g ()) (T.critical_path nominal);
  let derate g = if Hashtbl.mem critical g then 1.0 else 1.25 in
  let degraded = T.analyze ~derate nl in
  let replica = Sensor.critical_path_replica ~nominal ~degraded in
  let insitu = Sensor.in_situ_monitors ~nominal ~degraded in
  Alcotest.(check (float 1e-6)) "replica blind" 0.0 replica.Sensor.slowdown;
  Alcotest.(check bool) "in-situ sees it" true (insitu.Sensor.slowdown > 0.01)

let test_quantize () =
  let r = { Sensor.slowdown = 0.053; alarms = 1 } in
  Alcotest.(check (float 1e-9)) "rounded up" 0.06
    (Sensor.quantize ~resolution:0.01 r).Sensor.slowdown

let test_tuning_closes_uniform_slowdown () =
  let pl = placement () in
  let o = Tuning.compensate pl ~derate:(M.uniform 0.08) in
  Alcotest.(check bool) "timing closed" true o.Tuning.timing_closed;
  Alcotest.(check bool) "measured ~ 8%+guardband" true
    (o.Tuning.measured_beta >= 0.08);
  Alcotest.(check bool) "bias costs leakage" true
    (o.Tuning.leakage_nw > o.Tuning.nominal_leakage_nw);
  Alcotest.(check bool) "degraded was over budget" true
    (o.Tuning.dcrit_degraded > o.Tuning.dcrit_nominal);
  Alcotest.(check bool) "clusters within default budget" true
    (o.Tuning.clusters <= 2)

let test_tuning_no_slowdown_no_bias () =
  let pl = placement () in
  let o = Tuning.compensate pl ~derate:(fun _ -> 1.0) in
  Alcotest.(check bool) "closed" true o.Tuning.timing_closed;
  Alcotest.(check (float 1e-9)) "no extra leakage" o.Tuning.nominal_leakage_nw
    o.Tuning.leakage_nw

let test_tuning_closes_correlated_variation () =
  let pl = placement () in
  let rng = Fbb_util.Rng.create ~seed:21 in
  let derate =
    M.combine
      [ M.spatially_correlated rng ~sigma:0.04 pl; M.uniform 0.03 ]
  in
  let o = Tuning.compensate ~guardband:0.3 pl ~derate in
  Alcotest.(check bool) "timing closed under variation" true
    o.Tuning.timing_closed

let test_tuning_impossible_slowdown () =
  let pl = placement () in
  let o = Tuning.compensate pl ~derate:(M.uniform 0.6) in
  Alcotest.(check bool) "reported impossible" true (o.Tuning.levels = None);
  Alcotest.(check bool) "not closed" false o.Tuning.timing_closed

let test_tuning_aging_monotone_leakage () =
  let pl = placement () in
  let leak_at years =
    (Tuning.compensate pl ~derate:(fun _ -> M.nbti_aging_derate years))
      .Tuning.leakage_nw
  in
  let l0 = leak_at 0.0 and l3 = leak_at 3.0 and l10 = leak_at 10.0 in
  Alcotest.(check bool) "more aging, more compensation leakage" true
    (l0 <= l3 +. 1e-9 && l3 <= l10 +. 1e-9)

let test_montecarlo () =
  let pl = placement () in
  let mc = Fbb_variation.Montecarlo.run ~samples:8 ~sigma:0.04 pl in
  let open Fbb_variation.Montecarlo in
  Alcotest.(check int) "samples" 8 mc.samples;
  Alcotest.(check bool) "clustered yield >= as-is yield" true
    (mc.clustered.yield_pct >= mc.no_tuning.yield_pct);
  Alcotest.(check bool) "single-bb yield >= as-is yield" true
    (mc.single_bb.yield_pct >= mc.no_tuning.yield_pct);
  (* The clustered loop carries a sensing guardband while the Single BB
     baseline here searches the exact minimal level, so allow it a small
     handicap. *)
  if mc.clustered.yield_pct = mc.single_bb.yield_pct
     && mc.clustered.yield_pct > 0.0
  then
    Alcotest.(check bool) "clustered ships cheaper dies" true
      (mc.clustered.mean_leakage_nw <= mc.single_bb.mean_leakage_nw *. 1.15)

let test_montecarlo_deterministic () =
  let pl = placement () in
  let a = Fbb_variation.Montecarlo.run ~seed:5 ~samples:4 pl in
  let b = Fbb_variation.Montecarlo.run ~seed:5 ~samples:4 pl in
  Alcotest.(check (float 1e-9)) "same mean slowdown"
    a.Fbb_variation.Montecarlo.mean_measured_slowdown_pct
    b.Fbb_variation.Montecarlo.mean_measured_slowdown_pct

let suite =
  [
    ("montecarlo yield ordering", `Slow, test_montecarlo);
    ("montecarlo deterministic", `Slow, test_montecarlo_deterministic);
    ("uniform derate", `Quick, test_uniform);
    ("die-to-die stats", `Quick, test_die_to_die_stats);
    ("within-die per gate", `Quick, test_within_die_per_gate);
    ("spatial correlation", `Quick, test_spatial_correlation);
    ("temperature", `Quick, test_temperature);
    ("aging", `Quick, test_aging);
    ("combine", `Quick, test_combine);
    ("sensors read uniform slowdown", `Quick, test_sensors_uniform_slowdown);
    ("sensor reads zero at nominal", `Quick, test_sensor_no_slowdown);
    ("replica misses off-path slowdown", `Quick, test_replica_misses_offpath_slowdown);
    ("quantize", `Quick, test_quantize);
    ("tuning closes uniform slowdown", `Quick, test_tuning_closes_uniform_slowdown);
    ("tuning no slowdown, no bias", `Quick, test_tuning_no_slowdown_no_bias);
    ("tuning closes correlated variation", `Quick, test_tuning_closes_correlated_variation);
    ("tuning impossible slowdown", `Quick, test_tuning_impossible_slowdown);
    ("tuning aging monotone leakage", `Quick, test_tuning_aging_monotone_leakage);
  ]
