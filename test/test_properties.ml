(* Randomized end-to-end properties over generated circuits and solver
   inputs: whatever the seed, structural and optimality invariants must
   hold. *)

module N = Fbb_netlist.Netlist
module S = Fbb_lp.Simplex

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"random module -> place -> optimize invariants" ~count:8
      (pair (int_range 1 1_000_000) (int_range 2 6))
      (fun (seed, rows) ->
        let nl = Fbb_netlist.Generators.random_module ~seed ~gates:250 () in
        let pl = Fbb_place.Placement.place ~target_rows:rows nl in
        let p = Fbb_core.Problem.build ~beta:0.07 pl in
        match Fbb_core.Heuristic.optimize ~max_clusters:2 p with
        | None ->
          (* only legal when even full bias cannot close timing *)
          Fbb_core.Problem.max_single_level p = None
        | Some r ->
          Fbb_core.Solution.meets_timing p r.Fbb_core.Heuristic.levels
          && Fbb_core.Solution.cluster_count r.Fbb_core.Heuristic.levels <= 2
          && r.Fbb_core.Heuristic.leakage_nw
             <= r.Fbb_core.Heuristic.single_bb_leakage_nw +. 1e-9);
    Test.make ~name:"resize with identity is structure-preserving" ~count:10
      (int_range 1 1_000_000)
      (fun seed ->
        let nl = Fbb_netlist.Generators.random_module ~seed ~gates:120 () in
        let nl' = N.resize nl (fun _ -> None) in
        N.size nl = N.size nl'
        && Array.for_all
             (fun g ->
               (N.cell nl g).Fbb_tech.Cell_library.name
               = (N.cell nl' g).Fbb_tech.Cell_library.name)
             (N.gates nl));
    Test.make ~name:"bench roundtrip preserves gate count" ~count:10
      (int_range 1 1_000_000)
      (fun seed ->
        let nl = Fbb_netlist.Generators.random_module ~seed ~gates:150 () in
        let nl' = Fbb_netlist.Bench_io.parse (Fbb_netlist.Bench_io.to_string nl) in
        N.gate_count nl = N.gate_count nl' && N.validate nl' = Ok ());
    Test.make ~name:"placement deterministic and exhaustive" ~count:10
      (int_range 1 1_000_000)
      (fun seed ->
        let nl = Fbb_netlist.Generators.random_module ~seed ~gates:200 () in
        let a = Fbb_place.Placement.place ~target_rows:4 nl in
        let b = Fbb_place.Placement.place ~target_rows:4 nl in
        Array.for_all
          (fun g ->
            Fbb_place.Placement.row_of a g = Fbb_place.Placement.row_of b g
            && Fbb_place.Placement.row_of a g >= 0)
          (N.gates nl));
    Test.make ~name:"simplex finds known-feasible optimum bound" ~count:50
      (int_range 1 1_000_000)
      (fun seed ->
        (* Build an LP that is feasible by construction: pick x*, derive
           Ax* as the rhs of >= constraints. The solver's optimum can then
           never exceed c . x*. *)
        let rng = Fbb_util.Rng.create ~seed in
        let n = 2 + Fbb_util.Rng.int rng 6 in
        let m = 1 + Fbb_util.Rng.int rng 5 in
        let xstar = Array.init n (fun _ -> Fbb_util.Rng.float rng 5.0) in
        let minimize = Array.init n (fun _ -> Fbb_util.Rng.float rng 10.0) in
        let constraints =
          List.init m (fun _ ->
              let coeffs =
                Array.init n (fun _ -> Fbb_util.Rng.float rng 3.0)
              in
              let rhs = ref 0.0 in
              Array.iteri (fun i a -> rhs := !rhs +. (a *. xstar.(i))) coeffs;
              {
                S.terms = Array.to_list (Array.mapi (fun i a -> (i, a)) coeffs);
                relation = S.Ge;
                rhs = !rhs;
              })
        in
        let problem = { S.num_vars = n; minimize; constraints; upper = None } in
        match S.solve problem with
        | S.Optimal { objective; solution } ->
          let star_obj = ref 0.0 in
          Array.iteri (fun i c -> star_obj := !star_obj +. (c *. xstar.(i))) minimize;
          objective <= !star_obj +. 1e-6
          && S.check problem solution ~eps:1e-6
        | S.Infeasible | S.Unbounded | S.Pivot_limit | S.Budget_exhausted ->
          false);
    Test.make ~name:"checker agrees with meets_timing on random assignments"
      ~count:30
      (int_range 1 1_000_000)
      (fun seed ->
        let p = Tsupport.small_problem () in
        let rng = Fbb_util.Rng.create ~seed in
        let levels =
          Array.init (Fbb_core.Problem.num_rows p) (fun _ ->
              Fbb_util.Rng.int rng 11)
        in
        let checker = Fbb_core.Solution.Checker.create p levels in
        Fbb_core.Solution.Checker.feasible checker
        = Fbb_core.Solution.meets_timing p levels);
  ]

let recovery_tests =
  let open QCheck in
  [
    Test.make ~name:"rbb recovery invariants on random modules" ~count:6
      (int_range 1 1_000_000)
      (fun seed ->
        let nl = Fbb_netlist.Generators.random_module ~seed ~gates:250 () in
        let pl = Fbb_place.Placement.place ~target_rows:4 nl in
        let t = Fbb_core.Recovery.build ~margin:0.06 pl in
        let r = Fbb_core.Recovery.optimize ~max_clusters:2 t in
        Fbb_core.Recovery.meets_budget t r.Fbb_core.Recovery.levels
        && r.Fbb_core.Recovery.clusters <= 2
        && r.Fbb_core.Recovery.recovered_leakage_nw
           <= r.Fbb_core.Recovery.nominal_leakage_nw +. 1e-9
        && r.Fbb_core.Recovery.signoff_clean);
    Test.make ~name:"refined heuristic signoff-clean on random modules"
      ~count:6
      (int_range 1 1_000_000)
      (fun seed ->
        let nl = Fbb_netlist.Generators.random_module ~seed ~gates:250 () in
        let pl = Fbb_place.Placement.place ~target_rows:4 nl in
        let p = Fbb_core.Problem.build ~beta:0.06 pl in
        match Fbb_core.Refine.heuristic ~max_clusters:2 p with
        | None -> Fbb_core.Problem.max_single_level p = None
        | Some o -> o.Fbb_core.Refine.signoff_clean);
  ]

let suite =
  List.map (QCheck_alcotest.to_alcotest ~long:false)
    (qcheck_tests @ recovery_tests)
