(* Tests for the structural Verilog subset reader/writer. *)

module N = Fbb_netlist.Netlist
module V = Fbb_netlist.Verilog_io
module Sim = Fbb_netlist.Simulate

let test_write_basic () =
  let nl = Fbb_netlist.Generators.alu ~bits:4 () in
  let s = V.to_string ~module_name:"alu4" nl in
  Alcotest.(check bool) "module header" true (Tsupport.contains s "module alu4");
  Alcotest.(check bool) "endmodule" true (Tsupport.contains s "endmodule");
  Alcotest.(check bool) "instances" true (Tsupport.contains s "NAND2_X");
  Alcotest.(check bool) "assigns" true (Tsupport.contains s "assign")

let test_parse_basic () =
  let nl =
    V.parse
      "// a tiny design\n\
       module t (a, b, y);\n\
      \  input a, b;\n\
      \  output y;\n\
      \  wire n1;\n\
      \  NAND2_X1 u0 (.A(a), .B(b), .Y(n1));\n\
      \  INV_X2 u1 (.A(n1), .Y(n2));\n\
      \  assign y = n2;\n\
       endmodule\n"
  in
  Alcotest.(check int) "gates" 2 (N.gate_count nl);
  Alcotest.(check string) "drive kept" "INV_X2"
    (N.cell nl (N.find nl "n2")).Fbb_tech.Cell_library.name;
  let s = Sim.eval nl ~inputs:[ ("a", true); ("b", true) ] in
  Alcotest.(check bool) "and via nand+inv" true (Sim.output nl s "y")

let test_parse_dff_feedback () =
  let nl =
    V.parse
      "module t (a, q);\n\
      \  input a;\n\
      \  output q;\n\
      \  DFF_X1 u0 (.D(nq), .Q(qq), .CK(clkignored));\n\
      \  INV_X1 u1 (.A(qq), .Y(nq));\n\
      \  assign q = qq;\n\
       endmodule\n"
  in
  (match N.validate nl with
  | Ok () -> ()
  | Error es -> Alcotest.failf "invalid: %s" (String.concat ";" es));
  (* toggle flip-flop behaviour *)
  let s0 = Sim.eval nl ~inputs:[ ("a", false) ] in
  Alcotest.(check bool) "q=0" false (Sim.output nl s0 "q");
  let s1 = Sim.step nl s0 in
  Alcotest.(check bool) "q toggles" true (Sim.output nl s1 "q")

let test_parse_errors () =
  let expect_error src =
    match V.parse src with
    | exception V.Parse_error _ -> ()
    | _ -> Alcotest.failf "expected parse error for %s" src
  in
  expect_error "module t (y);\n output y;\n WIBBLE_X1 u0 (.A(a), .Y(y));\nendmodule\n";
  expect_error "module t (y);\n output y;\nendmodule\n";
  (* missing pin *)
  expect_error
    "module t (a, y);\n input a;\n output y;\n NAND2_X1 u0 (.A(a), .Y(y));\n\
     assign z = y;\nendmodule\n";
  (* combinational cycle *)
  expect_error
    "module t (a, y);\n input a;\n output y;\n\
     INV_X1 u0 (.A(n1), .Y(n0));\n INV_X1 u1 (.A(n0), .Y(n1));\n\
     assign y = n0;\nendmodule\n"

let test_roundtrip_structure () =
  let nl = (Fbb_netlist.Benchmarks.find "c1355").Fbb_netlist.Benchmarks.generate () in
  let nl' = V.parse (V.to_string nl) in
  Alcotest.(check int) "gates preserved" (N.gate_count nl) (N.gate_count nl');
  Alcotest.(check int) "inputs preserved"
    (Array.length (N.inputs nl))
    (Array.length (N.inputs nl'));
  Alcotest.(check int) "outputs preserved"
    (Array.length (N.outputs nl))
    (Array.length (N.outputs nl'));
  match N.validate nl' with
  | Ok () -> ()
  | Error es -> Alcotest.failf "roundtrip invalid: %s" (String.concat ";" es)

let test_roundtrip_simulation () =
  let nl = Fbb_netlist.Generators.adder_comparator ~bits:6 () in
  let nl' = V.parse (V.to_string nl) in
  let rng = Fbb_util.Rng.create ~seed:31 in
  for _ = 1 to 10 do
    let inputs =
      Array.to_list (N.inputs nl)
      |> List.map (fun i -> (N.name nl i, Fbb_util.Rng.bool rng))
    in
    let s = Sim.eval nl ~inputs in
    let s' = Sim.eval nl' ~inputs in
    Array.iter
      (fun o ->
        let driver = (N.fanins nl o).(0) in
        Alcotest.(check bool) "same value"
          (Sim.value s driver)
          (Sim.value s' (N.find nl' (N.name nl driver))))
      (N.outputs nl)
  done

let test_output_driven_directly () =
  (* OUTPUT net driven straight by an instance pin, no assign alias. *)
  let nl =
    V.parse
      "module t (a, y);\n  input a;\n  output y;\n\
      \  INV_X1 u0 (.A(a), .Y(y));\nendmodule\n"
  in
  Alcotest.(check int) "one gate" 1 (N.gate_count nl);
  Alcotest.(check int) "one output" 1 (Array.length (N.outputs nl));
  let s = Sim.eval nl ~inputs:[ ("a", false) ] in
  Alcotest.(check bool) "inverts" true (Sim.output nl s "y")

let test_save_and_parse_file () =
  let nl = Fbb_netlist.Generators.alu ~bits:4 () in
  let path = Filename.temp_file "fbb" ".v" in
  V.save nl ~path;
  let nl' = V.parse_file path in
  Sys.remove path;
  Alcotest.(check int) "gates" (N.gate_count nl) (N.gate_count nl')

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"verilog roundtrip on random modules" ~count:8
      (int_range 1 1_000_000)
      (fun seed ->
        let nl = Fbb_netlist.Generators.random_module ~seed ~gates:150 () in
        let nl' = V.parse (V.to_string nl) in
        N.gate_count nl = N.gate_count nl' && N.validate nl' = Ok ());
  ]

let suite =
  [
    ("write basic", `Quick, test_write_basic);
    ("parse basic", `Quick, test_parse_basic);
    ("parse dff feedback", `Quick, test_parse_dff_feedback);
    ("parse errors", `Quick, test_parse_errors);
    ("roundtrip structure (c1355)", `Quick, test_roundtrip_structure);
    ("roundtrip simulation", `Quick, test_roundtrip_simulation);
    ("output driven directly", `Quick, test_output_driven_directly);
    ("save and parse file", `Quick, test_save_and_parse_file);
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_tests
