(* Tests for Fbb_lp (simplex) and Fbb_ilp (branch and bound). *)

module S = Fbb_lp.Simplex
module BB = Fbb_ilp.Branch_bound

let lp ?upper num_vars minimize constraints =
  { S.num_vars; minimize = Array.of_list minimize; constraints; upper }

let c terms relation rhs = { S.terms; relation; rhs }

let expect_opt name problem expected_obj =
  match S.solve problem with
  | S.Optimal { objective; solution } ->
    Alcotest.(check (float 1e-6)) name expected_obj objective;
    Alcotest.(check bool) "solution feasible" true
      (S.check problem solution ~eps:1e-6)
  | S.Infeasible -> Alcotest.failf "%s: infeasible" name
  | S.Unbounded -> Alcotest.failf "%s: unbounded" name
  | S.Pivot_limit -> Alcotest.failf "%s: pivot limit" name
  | S.Budget_exhausted -> Alcotest.failf "%s: budget exhausted" name

let test_lp_max_basic () =
  (* max 3x+2y st x+y<=4, x+3y<=6 -> 12 at (4,0) *)
  expect_opt "basic max"
    (lp 2 [ -3.0; -2.0 ]
       [ c [ (0, 1.0); (1, 1.0) ] S.Le 4.0; c [ (0, 1.0); (1, 3.0) ] S.Le 6.0 ])
    (-12.0)

let test_lp_min_with_eq () =
  expect_opt "min with equality"
    (lp 2 [ 1.0; 1.0 ]
       [ c [ (0, 1.0); (1, 1.0) ] S.Ge 2.0; c [ (0, 1.0); (1, -1.0) ] S.Eq 1.0 ])
    2.0

let test_lp_negative_rhs () =
  (* -x <= -3  <=>  x >= 3 *)
  expect_opt "negative rhs" (lp 1 [ 1.0 ] [ c [ (0, -1.0) ] S.Le (-3.0) ]) 3.0

let test_lp_infeasible () =
  match
    S.solve
      (lp 1 [ 1.0 ] [ c [ (0, 1.0) ] S.Le 1.0; c [ (0, 1.0) ] S.Ge 2.0 ])
  with
  | S.Infeasible -> ()
  | S.Optimal _ | S.Unbounded | S.Pivot_limit | S.Budget_exhausted ->
    Alcotest.fail "expected infeasible"

let test_lp_unbounded () =
  match S.solve (lp 1 [ -1.0 ] []) with
  | S.Unbounded -> ()
  | S.Optimal _ | S.Infeasible | S.Pivot_limit | S.Budget_exhausted ->
    Alcotest.fail "expected unbounded"

let test_lp_upper_bounds () =
  expect_opt "upper bound binds"
    (lp ~upper:[| 5.0 |] 1 [ -1.0 ] [])
    (-5.0)

let test_lp_degenerate () =
  (* Multiple redundant constraints through one vertex. *)
  expect_opt "degenerate"
    (lp 2 [ -1.0; -1.0 ]
       [
         c [ (0, 1.0); (1, 1.0) ] S.Le 1.0;
         c [ (0, 2.0); (1, 2.0) ] S.Le 2.0;
         c [ (0, 1.0) ] S.Le 1.0;
         c [ (1, 1.0) ] S.Le 1.0;
       ])
    (-1.0)

let test_lp_duplicate_terms () =
  (* (x + x) <= 4 must densify to 2x <= 4. *)
  expect_opt "duplicate terms"
    (lp 1 [ -1.0 ] [ c [ (0, 1.0); (0, 1.0) ] S.Le 4.0 ])
    (-2.0)

(* Brute-force reference for small 0-1 programs. *)
let brute p =
  let n = p.BB.num_vars in
  let best = ref None in
  for mask = 0 to (1 lsl n) - 1 do
    let x = Array.init n (fun i -> if mask land (1 lsl i) <> 0 then 1.0 else 0.0) in
    let ok =
      List.for_all
        (fun (cc : S.constr) ->
          let lhs =
            List.fold_left (fun a (v, co) -> a +. (co *. x.(v))) 0.0 cc.S.terms
          in
          match cc.S.relation with
          | S.Le -> lhs <= cc.S.rhs +. 1e-9
          | S.Ge -> lhs >= cc.S.rhs -. 1e-9
          | S.Eq -> Float.abs (lhs -. cc.S.rhs) <= 1e-9)
        p.BB.constraints
    in
    if ok then begin
      let obj = BB.objective_of p x in
      match !best with
      | Some b when b <= obj -> ()
      | Some _ | None -> best := Some obj
    end
  done;
  !best

let random_problem rng =
  let open Fbb_util in
  let n = 3 + Rng.int rng 8 in
  let m = 1 + Rng.int rng 6 in
  let minimize =
    Array.init n (fun _ -> float_of_int (1 + Rng.int rng 20))
  in
  let constraints =
    List.init m (fun _ ->
        let terms =
          List.init n (fun v -> (v, float_of_int (Rng.int rng 4)))
          |> List.filter (fun (_, co) -> co > 0.0)
        in
        if terms = [] then c [ (0, 1.0) ] S.Ge 0.0
        else
          let total =
            List.fold_left (fun a (_, co) -> a +. co) 0.0 terms
          in
          c terms S.Ge (Float.of_int (Rng.int rng (int_of_float total + 1))))
  in
  { BB.num_vars = n; minimize; constraints }

let test_bb_vs_brute_force () =
  let rng = Fbb_util.Rng.create ~seed:123 in
  for _ = 1 to 60 do
    let p = random_problem rng in
    let r = BB.solve p in
    match (brute p, r.BB.best) with
    | None, None -> ()
    | Some expected, Some (_, got) ->
      Alcotest.(check (float 1e-6)) "optimum matches brute force" expected got
    | None, Some _ -> Alcotest.fail "bb found solution to infeasible problem"
    | Some _, None -> Alcotest.fail "bb missed a feasible solution"
  done

let test_bb_status_optimal () =
  let p =
    { BB.num_vars = 2; minimize = [| 1.0; 2.0 |];
      constraints = [ c [ (0, 1.0); (1, 1.0) ] S.Ge 1.0 ] }
  in
  let r = BB.solve p in
  Alcotest.(check bool) "proved optimal" true (r.BB.status = BB.Proved_optimal);
  match r.BB.best with
  | Some (_, obj) -> Alcotest.(check (float 1e-9)) "picks cheaper var" 1.0 obj
  | None -> Alcotest.fail "no solution"

let test_bb_infeasible () =
  let p =
    { BB.num_vars = 2; minimize = [| 1.0; 1.0 |];
      constraints =
        [
          c [ (0, 1.0); (1, 1.0) ] S.Le 1.0;
          c [ (0, 1.0) ] S.Ge 1.0;
          c [ (1, 1.0) ] S.Ge 1.0;
        ] }
  in
  Alcotest.(check bool) "infeasible" true
    ((BB.solve p).BB.status = BB.Proved_infeasible)

let test_bb_warm_start () =
  let p =
    { BB.num_vars = 3; minimize = [| 3.0; 5.0; 4.0 |];
      constraints =
        [
          c [ (0, 1.0); (1, 1.0) ] S.Ge 1.0;
          c [ (1, 1.0); (2, 1.0) ] S.Ge 1.0;
          c [ (0, 1.0); (2, 1.0) ] S.Ge 1.0;
        ] }
  in
  let r = BB.solve ~incumbent:[| 1.0; 1.0; 1.0 |] p in
  (match r.BB.best with
  | Some (_, obj) -> Alcotest.(check (float 1e-9)) "optimal 7" 7.0 obj
  | None -> Alcotest.fail "no solution");
  Alcotest.check_raises "bad incumbent rejected"
    (Invalid_argument "Branch_bound.solve: infeasible incumbent") (fun () ->
      ignore (BB.solve ~incumbent:[| 0.0; 0.0; 0.0 |] p))

let test_bb_cutoff () =
  let p =
    { BB.num_vars = 1; minimize = [| 5.0 |];
      constraints = [ c [ (0, 1.0) ] S.Ge 1.0 ] }
  in
  let r = BB.solve ~cutoff:5.0 p in
  Alcotest.(check bool) "cutoff suppresses equal solutions" true
    (r.BB.best = None);
  let r2 = BB.solve ~cutoff:5.1 p in
  Alcotest.(check bool) "cutoff admits better solutions" true
    (r2.BB.best <> None)

let test_lp_pivot_limit () =
  (* The basic max problem needs at least one pivot to leave the
     origin; a zero budget must surface as a typed outcome, not an
     exception. *)
  let p =
    lp 2 [ -3.0; -2.0 ]
      [ c [ (0, 1.0); (1, 1.0) ] S.Le 4.0; c [ (0, 1.0); (1, 3.0) ] S.Le 6.0 ]
  in
  let limit_c = Fbb_obs.Counter.make "lp.pivot_limit" in
  let before = Fbb_obs.Counter.read limit_c in
  (match S.solve ~max_pivots:0 p with
  | S.Pivot_limit -> ()
  | S.Optimal _ | S.Infeasible | S.Unbounded | S.Budget_exhausted ->
    Alcotest.fail "expected pivot limit");
  Alcotest.(check int) "lp.pivot_limit counter bumped" (before + 1)
    (Fbb_obs.Counter.read limit_c);
  (* An ample budget still solves the same problem. *)
  expect_opt "same problem, ample budget" p (-12.0)

let test_bb_counters_match_result () =
  let nodes_c = Fbb_obs.Counter.make "bb.nodes" in
  let pruned_c = Fbb_obs.Counter.make "bb.pruned" in
  let rng = Fbb_util.Rng.create ~seed:321 in
  for _ = 1 to 10 do
    let p = random_problem rng in
    let n0 = Fbb_obs.Counter.read nodes_c in
    let p0 = Fbb_obs.Counter.read pruned_c in
    let r = BB.solve p in
    Alcotest.(check int) "bb.nodes delta equals result.nodes" r.BB.nodes
      (Fbb_obs.Counter.read nodes_c - n0);
    Alcotest.(check bool) "pruned delta bounded by nodes" true
      (let dp = Fbb_obs.Counter.read pruned_c - p0 in
       dp >= 0 && dp <= r.BB.nodes)
  done

let test_bb_node_limit () =
  let rng = Fbb_util.Rng.create ~seed:77 in
  let p = random_problem rng in
  let r = BB.solve ~limits:{ BB.max_nodes = 1; max_seconds = 60.0 } p in
  Alcotest.(check bool) "limited" true (r.BB.nodes <= 2)

let suite =
  [
    ("lp max basic", `Quick, test_lp_max_basic);
    ("lp min with equality", `Quick, test_lp_min_with_eq);
    ("lp negative rhs", `Quick, test_lp_negative_rhs);
    ("lp infeasible", `Quick, test_lp_infeasible);
    ("lp unbounded", `Quick, test_lp_unbounded);
    ("lp upper bounds", `Quick, test_lp_upper_bounds);
    ("lp degenerate", `Quick, test_lp_degenerate);
    ("lp duplicate terms", `Quick, test_lp_duplicate_terms);
    ("lp pivot limit", `Quick, test_lp_pivot_limit);
    ("bb vs brute force", `Slow, test_bb_vs_brute_force);
    ("bb proved optimal", `Quick, test_bb_status_optimal);
    ("bb infeasible", `Quick, test_bb_infeasible);
    ("bb warm start", `Quick, test_bb_warm_start);
    ("bb cutoff", `Quick, test_bb_cutoff);
    ("bb node limit", `Quick, test_bb_node_limit);
    ("bb counters match result", `Quick, test_bb_counters_match_result);
  ]
