(* Tests for Fbb_core: problem pre-processing, CheckTiming, heuristic,
   ILP formulation and both exact strategies. *)

module Problem = Fbb_core.Problem
module Solution = Fbb_core.Solution
module Heuristic = Fbb_core.Heuristic
module Ilp = Fbb_core.Ilp_opt
module BB = Fbb_ilp.Branch_bound

let problem = Tsupport.small_problem

let test_problem_shape () =
  let p = problem () in
  Alcotest.(check int) "rows" 6 (Problem.num_rows p);
  Alcotest.(check int) "levels" 11 (Problem.num_levels p);
  Alcotest.(check bool) "has constraints" true (Problem.num_paths p > 0);
  Array.iter
    (fun req -> Alcotest.(check bool) "required positive" true (req > 0.0))
    p.Problem.required

let test_levels_must_start_at_zero () =
  Alcotest.(check bool) "rejected" true
    (match
       Problem.build ~levels:[| 0.1; 0.2 |] ~beta:0.05
         (Lazy.force Tsupport.small_placement)
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_coefficient_consistency () =
  let p = problem () in
  (* achieved == sum of per-row coefficients for any assignment. *)
  let rng = Fbb_util.Rng.create ~seed:4 in
  for _ = 1 to 10 do
    let levels =
      Array.init (Problem.num_rows p) (fun _ -> Fbb_util.Rng.int rng 11)
    in
    for k = 0 to Problem.num_paths p - 1 do
      let direct = Problem.achieved p ~levels ~path:k in
      let via_coeff = ref 0.0 in
      for r = 0 to Problem.num_rows p - 1 do
        via_coeff :=
          !via_coeff +. Problem.coefficient p ~path:k ~row:r ~level:levels.(r)
      done;
      Alcotest.(check (float 1e-6)) "achieved = sum coefficients" direct
        !via_coeff
    done
  done

let test_zero_level_reduces_nothing () =
  let p = problem () in
  for k = 0 to Problem.num_paths p - 1 do
    Alcotest.(check (float 1e-12)) "level 0 reduction" 0.0
      (Problem.achieved p ~levels:(Solution.uniform p 0) ~path:k)
  done

let test_row_leak_monotone () =
  let p = problem () in
  for r = 0 to Problem.num_rows p - 1 do
    for j = 1 to Problem.num_levels p - 1 do
      Alcotest.(check bool) "leak grows with level" true
        (Problem.row_leakage p ~row:r ~level:j
        > Problem.row_leakage p ~row:r ~level:(j - 1))
    done
  done

let test_row_leak_matches_library () =
  let p = problem () in
  let pl = Lazy.force Tsupport.small_placement in
  let nl = Fbb_place.Placement.netlist pl in
  let lib = Fbb_netlist.Netlist.library nl in
  let direct =
    Array.fold_left
      (fun acc g ->
        acc
        +. Fbb_tech.Cell_library.leakage_nw lib (Fbb_netlist.Netlist.cell nl g)
             ~vbs:0.0)
      0.0
      (Fbb_netlist.Netlist.gates nl)
  in
  Alcotest.(check (float 1e-6)) "total NBB leak"
    direct
    (Solution.leakage_nw p (Solution.uniform p 0))

let test_max_single_level () =
  let p = problem () in
  match Problem.max_single_level p with
  | None -> Alcotest.fail "expected feasible"
  | Some j ->
    Alcotest.(check bool) "uniform j meets timing" true
      (Solution.meets_timing p (Solution.uniform p j));
    if j > 0 then
      Alcotest.(check bool) "uniform j-1 violates" false
        (Solution.meets_timing p (Solution.uniform p (j - 1)))

let test_infeasible_beta () =
  (* A slowdown beyond the maximum compensable range: max speed-up is 21%,
     so beta = 60% cannot be fixed. *)
  let p = Fbb_core.Problem.build ~beta:0.6 (Lazy.force Tsupport.small_placement) in
  Alcotest.(check bool) "no single level" true
    (Problem.max_single_level p = None);
  Alcotest.(check bool) "heuristic returns None" true
    (Heuristic.optimize ~max_clusters:2 p = None)

let test_checker_incremental_matches_full () =
  let p = problem () in
  let rng = Fbb_util.Rng.create ~seed:11 in
  let levels = Solution.uniform p 5 in
  let checker = Solution.Checker.create p levels in
  for _ = 1 to 200 do
    let row = Fbb_util.Rng.int rng (Problem.num_rows p) in
    let level = Fbb_util.Rng.int rng (Problem.num_levels p) in
    Solution.Checker.set checker ~row ~level;
    levels.(row) <- level;
    Alcotest.(check bool) "incremental = full"
      (Solution.meets_timing p levels)
      (Solution.Checker.feasible checker)
  done

let test_clusters_used () =
  Alcotest.(check (list int)) "distinct sorted" [ 0; 2; 5 ]
    (Solution.clusters_used [| 5; 0; 2; 2; 0 |]);
  Alcotest.(check int) "count" 3 (Solution.cluster_count [| 5; 0; 2; 2; 0 |])

let test_worst_margin () =
  let p = problem () in
  match Problem.max_single_level p with
  | None -> Alcotest.fail "infeasible"
  | Some j ->
    Alcotest.(check bool) "feasible margin >= 0" true
      (Solution.worst_margin p (Solution.uniform p j) >= 0.0);
    if j > 0 then
      Alcotest.(check bool) "infeasible margin < 0" true
        (Solution.worst_margin p (Solution.uniform p 0) < 0.0)

let test_pass_one_is_single_bb () =
  let p = problem () in
  Alcotest.(check bool) "pass_one = max_single_level" true
    (Heuristic.pass_one p = Problem.max_single_level p)

let test_heuristic_valid () =
  let p = problem () in
  List.iter
    (fun cmax ->
      match Heuristic.optimize ~max_clusters:cmax p with
      | None -> Alcotest.fail "expected a solution"
      | Some r ->
        Alcotest.(check bool) "meets timing" true
          (Solution.meets_timing p r.Heuristic.levels);
        Alcotest.(check bool) "within cluster budget" true
          (r.Heuristic.clusters <= cmax);
        Alcotest.(check bool) "never exceeds the single-BB baseline" true
          (r.Heuristic.leakage_nw <= r.Heuristic.single_bb_leakage_nw +. 1e-9);
        Alcotest.(check bool) "savings non-negative" true
          (r.Heuristic.savings_pct >= -1e-9))
    [ 1; 2; 3; 4 ]

let test_heuristic_c1_is_single_bb () =
  let p = problem () in
  match Heuristic.optimize ~max_clusters:1 p with
  | None -> Alcotest.fail "expected solution"
  | Some r ->
    Alcotest.(check (float 1e-9)) "C=1 equals Single BB"
      r.Heuristic.single_bb_leakage_nw r.Heuristic.leakage_nw

let test_heuristic_monotone_in_c () =
  let p = problem () in
  let leak c =
    match Heuristic.optimize ~max_clusters:c p with
    | Some r -> r.Heuristic.leakage_nw
    | None -> Alcotest.fail "expected solution"
  in
  Alcotest.(check bool) "C=3 at least as good as C=2" true
    (leak 3 <= leak 2 +. 1e-9);
  Alcotest.(check bool) "C=2 at least as good as C=1" true
    (leak 2 <= leak 1 +. 1e-9)

let test_criticality_nonnegative () =
  let p = problem () in
  Array.iter
    (fun ct -> Alcotest.(check bool) "ct >= 0" true (ct >= 0.0))
    (Heuristic.criticality p)

let test_ilp_enumerate_valid () =
  let p = problem () in
  let config =
    { Ilp.default_config with limits = { BB.max_nodes = 100_000; max_seconds = 30.0 } }
  in
  let r = Ilp.optimize ~config p in
  Alcotest.(check bool) "proved" true r.Ilp.proved_optimal;
  match r.Ilp.levels with
  | None -> Alcotest.fail "no solution"
  | Some levels ->
    Alcotest.(check bool) "meets timing" true (Solution.meets_timing p levels);
    Alcotest.(check bool) "within budget" true
      (Solution.cluster_count levels <= 2)

let test_ilp_beats_heuristic () =
  let p = problem () in
  let h = Option.get (Heuristic.optimize ~max_clusters:2 p) in
  let r =
    Ilp.optimize
      ~config:{ Ilp.default_config with limits = { BB.max_nodes = 100_000; max_seconds = 30.0 } }
      ~warm_start:h.Heuristic.levels p
  in
  match r.Ilp.leakage_nw with
  | Some leak ->
    Alcotest.(check bool) "ilp <= heuristic" true
      (leak <= h.Heuristic.leakage_nw +. 1e-6)
  | None -> Alcotest.fail "no ilp solution"

let test_strategies_agree () =
  (* A smaller problem so the monolithic formulation finishes quickly. *)
  let nl = Fbb_netlist.Generators.prefix_adder ~bits:8 () in
  let pl = Fbb_place.Placement.place ~target_rows:3 nl in
  let p = Problem.build ~beta:0.08 pl in
  let limits = { BB.max_nodes = 200_000; max_seconds = 60.0 } in
  let run strategy =
    Ilp.optimize
      ~config:{ Ilp.default_config with strategy; limits }
      p
  in
  let a = run Ilp.Enumerate in
  let b = run Ilp.Monolithic in
  Alcotest.(check bool) "both proved" true
    (a.Ilp.proved_optimal && b.Ilp.proved_optimal);
  match (a.Ilp.leakage_nw, b.Ilp.leakage_nw) with
  | Some la, Some lb ->
    Alcotest.(check (float 1e-3)) "same optimum" lb la
  | _, _ -> Alcotest.fail "missing solutions"

let test_constraint_reduction_lossless () =
  let nl = Fbb_netlist.Generators.prefix_adder ~bits:8 () in
  let pl = Fbb_place.Placement.place ~target_rows:3 nl in
  let p = Problem.build ~beta:0.08 pl in
  let limits = { BB.max_nodes = 200_000; max_seconds = 60.0 } in
  let run reduce =
    Ilp.optimize ~config:{ Ilp.default_config with reduce; limits } p
  in
  let a = run true and b = run false in
  Alcotest.(check bool) "reduction keeps fewer constraints" true
    (a.Ilp.constraints_solved <= b.Ilp.constraints_solved);
  match (a.Ilp.leakage_nw, b.Ilp.leakage_nw) with
  | Some la, Some lb -> Alcotest.(check (float 1e-3)) "same optimum" lb la
  | _, _ -> Alcotest.fail "missing solutions"

let test_ilp_infeasible_beta () =
  let p = Problem.build ~beta:0.6 (Lazy.force Tsupport.small_placement) in
  let r = Ilp.optimize p in
  Alcotest.(check bool) "no solution" true (r.Ilp.levels = None);
  Alcotest.(check bool) "proved" true r.Ilp.proved_optimal

let test_formulation_shape () =
  let p = problem () in
  let bbp = Ilp.formulate ~reduce:false ~max_clusters:2 p in
  let nrows = Problem.num_rows p and nlev = Problem.num_levels p in
  Alcotest.(check int) "variables = N*P + P"
    ((nrows * nlev) + nlev)
    bbp.Fbb_ilp.Branch_bound.num_vars;
  (* timing + assignment + linking + budget + y-bounds *)
  Alcotest.(check int) "constraint count"
    (Problem.num_paths p + nrows + nlev + 1 + nlev)
    (List.length bbp.Fbb_ilp.Branch_bound.constraints)

let recovery_t =
  lazy (Fbb_core.Recovery.build ~margin:0.08 (Lazy.force Tsupport.small_placement))

let test_recovery_valid () =
  let t = Lazy.force recovery_t in
  let r = Fbb_core.Recovery.optimize ~max_clusters:2 t in
  Alcotest.(check bool) "meets budget" true
    (Fbb_core.Recovery.meets_budget t r.Fbb_core.Recovery.levels);
  Alcotest.(check bool) "clusters within budget" true
    (r.Fbb_core.Recovery.clusters <= 2);
  Alcotest.(check bool) "recovers leakage" true
    (r.Fbb_core.Recovery.savings_pct > 0.0);
  Alcotest.(check bool) "signoff clean" true r.Fbb_core.Recovery.signoff_clean;
  Alcotest.(check bool) "never exceeds nominal" true
    (r.Fbb_core.Recovery.recovered_leakage_nw
    <= r.Fbb_core.Recovery.nominal_leakage_nw +. 1e-9)

let test_recovery_monotone_in_margin () =
  let pl = Lazy.force Tsupport.small_placement in
  let rec_at margin =
    (Fbb_core.Recovery.optimize
       (Fbb_core.Recovery.build ~margin pl))
      .Fbb_core.Recovery.recovered_leakage_nw
  in
  Alcotest.(check bool) "more margin, more recovery" true
    (rec_at 0.12 <= rec_at 0.04 +. 1e-6)

let test_recovery_zero_margin_safe () =
  let pl = Lazy.force Tsupport.small_placement in
  let t = Fbb_core.Recovery.build pl in
  let r = Fbb_core.Recovery.optimize t in
  (* With no margin the result may be all-NBB, but must never violate. *)
  Alcotest.(check bool) "meets budget" true
    (Fbb_core.Recovery.meets_budget t r.Fbb_core.Recovery.levels);
  Alcotest.(check bool) "signoff" true r.Fbb_core.Recovery.signoff_clean

let test_recovery_signoff_independent () =
  (* Verify with a fully independent STA that the stretched netlist stays
     inside the budget. *)
  let pl = Lazy.force Tsupport.small_placement in
  let t = Fbb_core.Recovery.build ~margin:0.08 pl in
  let r = Fbb_core.Recovery.optimize t in
  let nl = Fbb_place.Placement.netlist pl in
  let bias g =
    let row = Fbb_place.Placement.row_of pl g in
    if row < 0 then 0.0
    else t.Fbb_core.Recovery.levels.(r.Fbb_core.Recovery.levels.(row))
  in
  let biased = Fbb_sta.Timing.analyze ~bias nl in
  Alcotest.(check bool) "independent signoff" true
    (Fbb_sta.Timing.dcrit biased <= t.Fbb_core.Recovery.budget_ps +. 1e-6)

let test_refine_signoff_direct () =
  let p = problem () in
  (* A maximal uniform assignment always passes signoff (bias only speeds
     things up); an all-NBB assignment fails whenever constraints exist. *)
  let clean_hi, offenders_hi =
    Fbb_core.Refine.signoff p ~levels:(Solution.uniform p 10)
  in
  Alcotest.(check bool) "max bias closes" true clean_hi;
  Alcotest.(check int) "no offenders" 0 (Array.length offenders_hi);
  let clean_lo, offenders_lo =
    Fbb_core.Refine.signoff p ~levels:(Solution.uniform p 0)
  in
  Alcotest.(check bool) "NBB fails under slowdown" false clean_lo;
  Alcotest.(check bool) "offenders reported" true
    (Array.length offenders_lo > 0)

let test_refine_generic_solver () =
  let p = problem () in
  (* A constant solver returning the maximal assignment must converge in
     one iteration. *)
  let o =
    Option.get
      (Fbb_core.Refine.solve
         ~solver:(fun q -> Some (Solution.uniform q 10))
         p)
  in
  Alcotest.(check int) "one iteration" 1 o.Fbb_core.Refine.iterations;
  Alcotest.(check bool) "clean" true o.Fbb_core.Refine.signoff_clean;
  (* A solver that always fails propagates None. *)
  Alcotest.(check bool) "none propagates" true
    (Fbb_core.Refine.solve ~solver:(fun _ -> None) p = None)

let test_heuristic_bad_c () =
  let p = problem () in
  Alcotest.(check bool) "C=0 rejected" true
    (match Heuristic.optimize ~max_clusters:0 p with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_extend_empty () =
  let p = problem () in
  Alcotest.(check int) "no-op" (Problem.num_paths p)
    (Problem.num_paths (Problem.extend p [||]))

let test_recovery_bad_margin () =
  Alcotest.(check bool) "negative margin rejected" true
    (match Fbb_core.Recovery.build ~margin:(-0.1) (Lazy.force Tsupport.small_placement) with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_zero_beta () =
  (* No slowdown: no constraints, jopt = 0, nothing to optimize. *)
  let p = Fbb_core.Problem.build ~beta:0.0 (Lazy.force Tsupport.small_placement) in
  Alcotest.(check int) "no constraints" 0 (Problem.num_paths p);
  Alcotest.(check (option int)) "jopt 0" (Some 0) (Heuristic.pass_one p);
  match Heuristic.optimize ~max_clusters:2 p with
  | None -> Alcotest.fail "expected trivial solution"
  | Some r ->
    Alcotest.(check (float 1e-9)) "no savings to make" 0.0
      r.Heuristic.savings_pct;
    Alcotest.(check (list int)) "all NBB" [ 0 ]
      (Solution.clusters_used r.Heuristic.levels)

(* ----- refine / recovery edge cases ------------------------------------- *)

let test_refine_zero_beta () =
  (* No slowdown means an empty critical-path set: the refinement loop
     must converge immediately with nothing to fold in. *)
  let p = Fbb_core.Problem.build ~beta:0.0 (Lazy.force Tsupport.small_placement) in
  Alcotest.(check int) "no constraints" 0 (Problem.num_paths p);
  match Fbb_core.Refine.heuristic p with
  | None -> Alcotest.fail "zero beta must be solvable"
  | Some o ->
    Alcotest.(check int) "one iteration" 1 o.Fbb_core.Refine.iterations;
    Alcotest.(check int) "nothing folded in" 0 o.Fbb_core.Refine.added_constraints;
    Alcotest.(check bool) "clean" true o.Fbb_core.Refine.signoff_clean

let test_refine_feasible_noop () =
  (* An input the solver already answers signoff-clean: the loop must be
     a no-op — one solve, zero added constraints, the problem returned
     unchanged. *)
  let p = problem () in
  let o =
    Option.get
      (Fbb_core.Refine.solve ~solver:(fun q -> Some (Solution.uniform q 10)) p)
  in
  Alcotest.(check int) "one iteration" 1 o.Fbb_core.Refine.iterations;
  Alcotest.(check int) "no added constraints" 0
    o.Fbb_core.Refine.added_constraints;
  Alcotest.(check int) "constraint set unchanged" (Problem.num_paths p)
    (Problem.num_paths o.Fbb_core.Refine.problem)

let test_refine_infeasible_at_max_bias () =
  (* A slowdown beyond the deepest bias level: the loop must propagate
     the heuristic's infeasibility instead of iterating. *)
  let p = Tsupport.small_problem ~beta:0.6 () in
  Alcotest.(check bool) "no single level" true (Problem.max_single_level p = None);
  Alcotest.(check bool) "refine reports infeasible" true
    (Fbb_core.Refine.heuristic p = None)

let test_recovery_empty_paths () =
  (* A constraint-free recovery instance: nothing bounds the greedy
     deepening, and any assignment trivially meets the (empty) budget.
     The optimizer must still terminate within its iteration cap. *)
  let t = Lazy.force recovery_t in
  let empty =
    {
      t with
      Fbb_core.Recovery.slack = [||];
      path_rows = [||];
      row_paths = Array.map (fun _ -> [||]) t.Fbb_core.Recovery.row_paths;
    }
  in
  let r = Fbb_core.Recovery.optimize ~max_iterations:3 empty in
  let nrows = Fbb_place.Placement.num_rows t.Fbb_core.Recovery.placement in
  Alcotest.(check int) "levels per row" nrows
    (Array.length r.Fbb_core.Recovery.levels);
  Alcotest.(check bool) "terminates within the cap" true
    (r.Fbb_core.Recovery.iterations <= 3);
  Alcotest.(check bool) "empty budget trivially met" true
    (Fbb_core.Recovery.meets_budget empty r.Fbb_core.Recovery.levels);
  Alcotest.(check bool) "recovers no more than nominal" true
    (r.Fbb_core.Recovery.recovered_leakage_nw
     <= r.Fbb_core.Recovery.nominal_leakage_nw +. 1e-9)

let test_recovery_impossible_budget () =
  (* A budget below the nominal critical delay cannot be met even at
     all-NBB (RBB only slows things down): signoff must honestly report
     failure instead of claiming a clean result. *)
  let t = Lazy.force recovery_t in
  let tight =
    { t with Fbb_core.Recovery.budget_ps = t.Fbb_core.Recovery.budget_ps /. 2.0 }
  in
  let r = Fbb_core.Recovery.optimize ~max_iterations:2 tight in
  Alcotest.(check bool) "signoff honestly fails" false
    r.Fbb_core.Recovery.signoff_clean;
  let clean, offenders =
    Fbb_core.Recovery.signoff tight (Array.make
      (Fbb_place.Placement.num_rows t.Fbb_core.Recovery.placement) 0)
  in
  Alcotest.(check bool) "even all-NBB misses the budget" false clean;
  Alcotest.(check bool) "offenders reported" true (Array.length offenders > 0)

let test_recovery_single_cluster_uniform () =
  (* C=1 leaves room for exactly one level across the block, so the
     assignment must be uniform. *)
  let t = Lazy.force recovery_t in
  let r = Fbb_core.Recovery.optimize ~max_clusters:1 t in
  Alcotest.(check int) "one cluster" 1 r.Fbb_core.Recovery.clusters;
  Alcotest.(check bool) "uniform assignment" true
    (Array.for_all
       (fun l -> l = r.Fbb_core.Recovery.levels.(0))
       r.Fbb_core.Recovery.levels)

let test_flow_end_to_end () =
  let spec = Fbb_netlist.Benchmarks.find "c1355" in
  let prep = Fbb_core.Flow.prepare spec in
  let ev =
    Fbb_core.Flow.evaluate ~cs:[ 2 ] prep ~beta:0.05
      ~ilp_limits:{ BB.max_nodes = 100_000; max_seconds = 30.0 }
  in
  Alcotest.(check bool) "has constraints" true (ev.Fbb_core.Flow.constraints > 0);
  Alcotest.(check bool) "single bb present" true
    (ev.Fbb_core.Flow.single_bb_nw <> None);
  (match Fbb_core.Flow.heuristic_savings_pct ev ~c:2 with
  | Some s -> Alcotest.(check bool) "heuristic non-negative" true (s >= -1e-9)
  | None -> Alcotest.fail "no heuristic result");
  match Fbb_core.Flow.ilp_savings_pct ev ~c:2 with
  | Some s ->
    let h = Option.get (Fbb_core.Flow.heuristic_savings_pct ev ~c:2) in
    Alcotest.(check bool) "ilp >= heuristic" true (s >= h -. 1e-6)
  | None -> Alcotest.fail "ilp timed out on c1355"

let suite =
  [
    ("problem shape", `Quick, test_problem_shape);
    ("levels must start at zero", `Quick, test_levels_must_start_at_zero);
    ("coefficient consistency", `Quick, test_coefficient_consistency);
    ("zero level reduces nothing", `Quick, test_zero_level_reduces_nothing);
    ("row leak monotone", `Quick, test_row_leak_monotone);
    ("row leak matches library", `Quick, test_row_leak_matches_library);
    ("max single level", `Quick, test_max_single_level);
    ("infeasible beta", `Quick, test_infeasible_beta);
    ("checker incremental = full", `Quick, test_checker_incremental_matches_full);
    ("clusters used", `Quick, test_clusters_used);
    ("worst margin", `Quick, test_worst_margin);
    ("pass one = single bb", `Quick, test_pass_one_is_single_bb);
    ("heuristic valid across C", `Quick, test_heuristic_valid);
    ("heuristic C=1 = single bb", `Quick, test_heuristic_c1_is_single_bb);
    ("heuristic monotone in C", `Quick, test_heuristic_monotone_in_c);
    ("criticality non-negative", `Quick, test_criticality_nonnegative);
    ("ilp enumerate valid", `Slow, test_ilp_enumerate_valid);
    ("ilp beats heuristic", `Slow, test_ilp_beats_heuristic);
    ("exact strategies agree", `Slow, test_strategies_agree);
    ("constraint reduction lossless", `Slow, test_constraint_reduction_lossless);
    ("ilp infeasible beta", `Quick, test_ilp_infeasible_beta);
    ("ilp formulation shape", `Quick, test_formulation_shape);
    ("rbb recovery valid", `Quick, test_recovery_valid);
    ("rbb recovery monotone in margin", `Quick, test_recovery_monotone_in_margin);
    ("rbb recovery zero margin safe", `Quick, test_recovery_zero_margin_safe);
    ("rbb recovery independent signoff", `Quick, test_recovery_signoff_independent);
    ("refine signoff direct", `Quick, test_refine_signoff_direct);
    ("refine generic solver", `Quick, test_refine_generic_solver);
    ("heuristic rejects C=0", `Quick, test_heuristic_bad_c);
    ("extend with empty set", `Quick, test_extend_empty);
    ("recovery rejects bad margin", `Quick, test_recovery_bad_margin);
    ("zero beta is trivial", `Quick, test_zero_beta);
    ("refine zero beta converges at once", `Quick, test_refine_zero_beta);
    ("refine feasible input is a no-op", `Quick, test_refine_feasible_noop);
    ( "refine infeasible at max bias",
      `Quick,
      test_refine_infeasible_at_max_bias );
    ("rbb recovery empty path set", `Quick, test_recovery_empty_paths);
    ("rbb recovery impossible budget", `Quick, test_recovery_impossible_budget);
    ( "rbb recovery single cluster uniform",
      `Quick,
      test_recovery_single_cluster_uniform );
    ("flow end to end (c1355)", `Slow, test_flow_end_to_end);
  ]
