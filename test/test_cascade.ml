(* Tests for the degradation cascade (Fbb_core.Cascade): stage
   selection under loose/tight/zero budgets, the independent sign-off,
   infeasibility proofs and fault-forced degradation. *)

module Cascade = Fbb_core.Cascade
module Budget = Fbb_util.Budget
module Problem = Fbb_core.Problem

let infeasible_problem () =
  (* Slowdown beyond the deepest bias level's compensation range. *)
  Fbb_core.Problem.build ~beta:0.6 (Lazy.force Tsupport.small_placement)

let test_unlimited_budget_is_exact () =
  let p = Tsupport.small_problem () in
  match Cascade.solve p with
  | {
   Cascade.outcome = Cascade.Solved { stage; levels; optimal; gap_pct; _ };
   exhausted;
   _;
  } ->
    Alcotest.(check bool) "first stage wins" true (stage = Cascade.Ilp);
    Alcotest.(check bool) "proved optimal" true optimal;
    Alcotest.(check bool) "budget not exhausted" false exhausted;
    Alcotest.(check bool) "independently signed off" true
      (Cascade.verify p ~max_clusters:2 levels);
    (match gap_pct with
    | Some g -> Alcotest.(check bool) "gap non-negative" true (g >= 0.0)
    | None -> ())
  | { Cascade.outcome = Cascade.Infeasible; _ } ->
    Alcotest.fail "feasible instance reported infeasible"

let test_zero_budget_floor () =
  let p = Tsupport.small_problem () in
  match Cascade.solve ~budget:(Budget.create ~work:0 ()) p with
  | { Cascade.outcome = Cascade.Solved { stage; levels; _ }; attempts; _ } ->
    Alcotest.(check bool) "the single-bb floor answers" true
      (stage = Cascade.Single_bb);
    Alcotest.(check bool) "floor answer signed off" true
      (Cascade.verify p ~max_clusters:2 levels);
    (* The skipped stages are recorded as exhausted in the degradation
       report, not silently dropped. *)
    List.iter
      (fun a ->
        if a.Cascade.stage <> Cascade.Single_bb then
          Alcotest.(check bool)
            (Printf.sprintf "%s reported exhausted"
               (Cascade.stage_name a.Cascade.stage))
            true
            (a.Cascade.status = Cascade.Exhausted))
      attempts
  | _ -> Alcotest.fail "expected the single-bb floor to answer"

let test_tight_budgets_stay_feasible () =
  (* Whatever the budget, a feasible instance must yield a verified
     feasible assignment - the anytime contract. *)
  let p = Tsupport.small_problem () in
  List.iter
    (fun work ->
      match Cascade.solve ~budget:(Budget.create ~work ()) p with
      | { Cascade.outcome = Cascade.Solved { levels; _ }; _ } ->
        Alcotest.(check bool)
          (Printf.sprintf "signed off at work=%d" work)
          true
          (Cascade.verify p ~max_clusters:2 levels)
      | { Cascade.outcome = Cascade.Infeasible; _ } ->
        Alcotest.failf "feasible instance reported infeasible at work=%d" work)
    [ 1; 10; 100; 1000 ]

let test_infeasible_instance () =
  let p = infeasible_problem () in
  (match Cascade.solve p with
  | { Cascade.outcome = Cascade.Infeasible; _ } -> ()
  | _ -> Alcotest.fail "expected Infeasible");
  (* Infeasibility is an exact proof (max_single_level = None), so it
     must hold even when every budgeted stage is starved. *)
  match Cascade.solve ~budget:(Budget.create ~work:0 ()) p with
  | { Cascade.outcome = Cascade.Infeasible; _ } -> ()
  | _ -> Alcotest.fail "expected Infeasible at zero budget"

let test_verify_rejects_bad_assignments () =
  let p = Tsupport.small_problem () in
  let n = Problem.num_rows p in
  Alcotest.(check bool) "wrong length" false
    (Cascade.verify p ~max_clusters:2 (Array.make (n + 1) 0));
  Alcotest.(check bool) "zero bias violates timing" false
    (Cascade.verify p ~max_clusters:2 (Array.make n 0));
  Alcotest.(check bool) "cluster budget enforced" false
    (Cascade.verify p ~max_clusters:1 (Array.init n (fun i -> i mod 2)))

let test_attempts_are_reported () =
  let p = Tsupport.small_problem () in
  let r = Cascade.solve p in
  (* At least one attempt, ending in an accepted stage; work and time
     are reported per attempt. *)
  Alcotest.(check bool) "some attempt recorded" true (r.Cascade.attempts <> []);
  Alcotest.(check bool) "one attempt accepted" true
    (List.exists (fun a -> a.Cascade.status = Cascade.Accepted)
       r.Cascade.attempts);
  List.iter
    (fun a ->
      Alcotest.(check bool) "work spent non-negative" true
        (a.Cascade.work_spent >= 0);
      Alcotest.(check bool) "elapsed non-negative" true
        (a.Cascade.elapsed_s >= 0.0))
    r.Cascade.attempts

let test_fault_forced_degradation () =
  (* With budget.exhaust firing on every stage entry, only the
     budget-free floor remains - and its answer still passes the
     independent sign-off. *)
  let p = Tsupport.small_problem () in
  Fbb_fault.Fault.configure ~rate:1.0 ~seed:1;
  Fun.protect ~finally:Fbb_fault.Fault.clear (fun () ->
      match Cascade.solve p with
      | { Cascade.outcome = Cascade.Solved { stage; levels; _ }; _ } ->
        Alcotest.(check bool) "only the floor remains" true
          (stage = Cascade.Single_bb);
        Alcotest.(check bool) "floor answer signed off" true
          (Fbb_fault.Fault.with_paused (fun () ->
               Cascade.verify p ~max_clusters:2 levels))
      | _ -> Alcotest.fail "expected the floor to answer under faults")

let suite =
  [
    ("unlimited budget is exact", `Quick, test_unlimited_budget_is_exact);
    ("zero budget falls to the floor", `Quick, test_zero_budget_floor);
    ("tight budgets stay feasible", `Quick, test_tight_budgets_stay_feasible);
    ("infeasible instance", `Quick, test_infeasible_instance);
    ("verify rejects bad assignments", `Quick,
     test_verify_rejects_bad_assignments);
    ("attempts are reported", `Quick, test_attempts_are_reported);
    ("fault-forced degradation", `Quick, test_fault_forced_degradation);
  ]
