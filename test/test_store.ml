(* Tests for the persistent prepared-context store (Fbb_serve.Store)
   and its server integration: entry framing and the trust model
   (version stamp, checksum, deletion of bad entries), warm-restart
   bit-identical payloads with store hits and a passing signoff, a
   corrupted entry degrading to a scratch rebuild with an identical
   payload, and spill failures degrading the daemon to in-memory
   operation instead of failing requests. *)

module P = Fbb_serve.Protocol
module Server = Fbb_serve.Server
module Client = Fbb_serve.Client
module Store = Fbb_serve.Store

let ok = function
  | Ok v -> v
  | Error m -> Alcotest.failf "unexpected error: %s" m

(* Counters are process-cumulative; tests assert on deltas. *)
let counter name = Fbb_obs.Counter.read (Fbb_obs.Counter.make name)

let rec rm_rf path =
  match Unix.lstat path with
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter
      (fun name -> rm_rf (Filename.concat path name))
      (Sys.readdir path);
    (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Sys.remove path with Sys_error _ -> ())

let tmp_counter = ref 0

let with_tmpdir f =
  incr tmp_counter;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "fbb-store-test-%d-%d" (Unix.getpid ()) !tmp_counter)
  in
  rm_rf dir;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

(* ----- store unit tests ------------------------------------------------- *)

let test_roundtrip () =
  with_tmpdir @@ fun dir ->
  let s = ok (Store.open_ ~dir) in
  Alcotest.(check bool) "fresh store is empty" true
    (Store.load s ~key:"gen:1" = Store.Miss);
  let payload = "binary\x00payload\xff\nwith newline" in
  ok (Store.save s ~key:"gen:1" payload);
  (match Store.load s ~key:"gen:1" with
  | Store.Hit p -> Alcotest.(check string) "payload survives" payload p
  | _ -> Alcotest.fail "expected hit");
  Alcotest.(check int) "one entry file" 1 (List.length (Store.entries s));
  (* Distinct keys are distinct entries; overwrite replaces. *)
  ok (Store.save s ~key:"gen:2" "other");
  ok (Store.save s ~key:"gen:1" "replaced");
  Alcotest.(check int) "two entry files" 2 (List.length (Store.entries s));
  match Store.load s ~key:"gen:1" with
  | Store.Hit p -> Alcotest.(check string) "overwrite replaces" "replaced" p
  | _ -> Alcotest.fail "expected hit after overwrite"

let test_corruption_detected () =
  with_tmpdir @@ fun dir ->
  let s = ok (Store.open_ ~dir) in
  ok (Store.save s ~key:"k" "a context payload");
  let path = Store.entry_path s ~key:"k" in
  (* Flip the last payload byte behind the store's back: bit rot. *)
  let content = In_channel.with_open_bin path In_channel.input_all in
  let flipped = Bytes.of_string content in
  let last = Bytes.length flipped - 1 in
  Bytes.set flipped last (Char.chr (Char.code (Bytes.get flipped last) lxor 1));
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_bytes oc flipped);
  (match Store.load s ~key:"k" with
  | Store.Corrupt reason ->
    Alcotest.(check bool) "checksum named" true
      (String.length reason > 0)
  | Store.Hit _ -> Alcotest.fail "corrupted entry handed out"
  | Store.Miss -> Alcotest.fail "corruption reported as a miss");
  (* The bad entry is deleted: the next lookup is a plain miss. *)
  Alcotest.(check bool) "entry deleted" false (Sys.file_exists path);
  Alcotest.(check bool) "then a miss" true (Store.load s ~key:"k" = Store.Miss)

let test_version_skew_is_miss () =
  with_tmpdir @@ fun dir ->
  let s = ok (Store.open_ ~dir) in
  (* Hand-craft an entry from a "different binary": valid framing and
     checksum, wrong version stamp. It must be a miss (stale), never a
     deserialization candidate, and the stale file is removed. *)
  let payload = "stale" in
  let header =
    String.concat " "
      [
        "fbb-ctx-1";
        String.make 32 '0';
        Digest.to_hex (Digest.string payload);
        string_of_int (String.length payload);
        "k";
      ]
  in
  let path = Store.entry_path s ~key:"k" in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc (header ^ "\n" ^ payload));
  Alcotest.(check bool) "other-version entry is a miss" true
    (Store.load s ~key:"k" = Store.Miss);
  Alcotest.(check bool) "stale file removed" false (Sys.file_exists path)

let test_truncated_entry () =
  with_tmpdir @@ fun dir ->
  let s = ok (Store.open_ ~dir) in
  ok (Store.save s ~key:"k" "full payload bytes");
  let path = Store.entry_path s ~key:"k" in
  let content = In_channel.with_open_bin path In_channel.input_all in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc
        (String.sub content 0 (String.length content - 4)));
  (match Store.load s ~key:"k" with
  | Store.Corrupt _ -> ()
  | _ -> Alcotest.fail "truncated entry must be corrupt");
  Alcotest.(check bool) "truncated entry removed" false (Sys.file_exists path)

(* ----- server integration ----------------------------------------------- *)

let wl = P.Generated { seed = 21; gates = 120; rows = 4 }

let solve id =
  P.Solve
    {
      id;
      client = None;
      workload = wl;
      beta = 0.05;
      max_clusters = 3;
      deadline_ms = None;
      work_budget = Some 5_000;
    }

let canon = function
  | P.Solved r -> P.Solved { r with elapsed_ms = 0.0 }
  | P.Infeasible { id; _ } -> P.Infeasible { id; elapsed_ms = 0.0 }
  | r -> r

(* One daemon lifetime against [dir]: start, run [ids] sequentially,
   stop. Returns the canonicalized payload lines. *)
let run_once ~dir ids =
  let config =
    { Server.default_config with port = 0; store_dir = Some dir }
  in
  match Server.start ~config () with
  | Error m -> Alcotest.failf "server start: %s" m
  | Ok srv ->
    Fun.protect ~finally:(fun () -> Server.stop srv) @@ fun () ->
    let c = ok (Client.connect ~port:(Server.port srv) ()) in
    Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
    List.map
      (fun id -> P.encode_response (canon (ok (Client.rpc c (solve id)))))
      ids

let test_warm_restart_identical () =
  with_tmpdir @@ fun dir ->
  let spills0 = counter "serve.store.spills" in
  let hits0 = counter "serve.store.hits" in
  let signoff0 = counter "serve.store.signoff_ok" in
  let cold = run_once ~dir [ "r1"; "r2" ] in
  Alcotest.(check bool) "cold run spilled the context" true
    (counter "serve.store.spills" > spills0);
  Alcotest.(check bool) "cold run had no store hit" true
    (counter "serve.store.hits" = hits0);
  let warm = run_once ~dir [ "r1"; "r2" ] in
  Alcotest.(check (list string)) "warm payloads bit-identical to cold" cold
    warm;
  Alcotest.(check bool) "warm run loaded from the store" true
    (counter "serve.store.hits" > hits0);
  Alcotest.(check bool) "loaded context signed off" true
    (counter "serve.store.signoff_ok" > signoff0);
  Alcotest.(check int) "no signoff failures" 0
    (counter "serve.store.signoff_failed")

let test_corrupt_entry_rebuilt () =
  with_tmpdir @@ fun dir ->
  let cold = run_once ~dir [ "x1" ] in
  (* Byte-flip the spilled context on disk. *)
  let s = ok (Store.open_ ~dir) in
  (match Store.entries s with
  | [] -> Alcotest.fail "no entry spilled"
  | name :: _ ->
    let path = Filename.concat dir name in
    let content = In_channel.with_open_bin path In_channel.input_all in
    let b = Bytes.of_string content in
    let mid = Bytes.length b - 8 in
    Bytes.set b mid (Char.chr (Char.code (Bytes.get b mid) lxor 0x40));
    Out_channel.with_open_bin path (fun oc -> Out_channel.output_bytes oc b));
  let corrupt0 = counter "serve.store.corrupt" in
  (* The warm daemon detects the corruption, rebuilds from scratch and
     answers an identical payload — corruption costs latency, never
     correctness. *)
  let warm = run_once ~dir [ "x1" ] in
  Alcotest.(check (list string)) "rebuilt payload identical" cold warm;
  Alcotest.(check bool) "corruption detected and counted" true
    (counter "serve.store.corrupt" > corrupt0)

let test_spill_failure_degrades () =
  with_tmpdir @@ fun dir ->
  let failed0 = counter "serve.store.spill_failed" in
  Fbb_util.Atomic_io.set_fault_hook
    (Some (fun _phase _path -> failwith "injected spill fault"));
  let responses =
    Fun.protect
      ~finally:(fun () -> Fbb_util.Atomic_io.set_fault_hook None)
      (fun () -> run_once ~dir [ "d1"; "d2" ])
  in
  (* Both requests solved despite every spill failing... *)
  List.iter
    (fun line ->
      match P.decode_response line with
      | Ok (P.Solved _) -> ()
      | Ok r ->
        Alcotest.failf "expected solved under spill faults, got %s"
          (P.encode_response r)
      | Error m -> Alcotest.failf "undecodable response: %s" m)
    responses;
  Alcotest.(check bool) "spill failure counted" true
    (counter "serve.store.spill_failed" > failed0);
  (* ...and nothing half-written was published. *)
  let s = ok (Store.open_ ~dir) in
  Alcotest.(check (list string)) "no entries published" [] (Store.entries s);
  (* With the fault gone the same store works again. *)
  let after = run_once ~dir [ "d3" ] in
  Alcotest.(check int) "serviceable after" 1 (List.length after)

let suite =
  [
    Alcotest.test_case "save/load round-trip" `Quick test_roundtrip;
    Alcotest.test_case "corruption detected and deleted" `Quick
      test_corruption_detected;
    Alcotest.test_case "version skew is a miss" `Quick
      test_version_skew_is_miss;
    Alcotest.test_case "truncated entry is corrupt" `Quick
      test_truncated_entry;
    Alcotest.test_case "warm restart bit-identical" `Quick
      test_warm_restart_identical;
    Alcotest.test_case "corrupt entry rebuilt identically" `Quick
      test_corrupt_entry_rebuilt;
    Alcotest.test_case "spill failure degrades to in-memory" `Quick
      test_spill_failure_degrades;
  ]
