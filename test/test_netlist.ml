(* Tests for Fbb_netlist: builder, structure, validation, topological
   order, bench IO, simulation, logic gadgets. *)

module N = Fbb_netlist.Netlist
module B = N.Builder
module L = Fbb_netlist.Logic
module CL = Fbb_tech.Cell_library
module Sim = Fbb_netlist.Simulate
module Bench = Fbb_netlist.Bench_io

let lib = CL.default

let tiny () =
  (* a, b -> nand -> inv -> out, plus a dff loop. *)
  let b = B.create lib in
  let a = B.input b "a" in
  let bb = B.input b "b" in
  let g1 = B.gate b ~name:"g1" CL.Nand2 [ a; bb ] in
  let g2 = B.gate b ~name:"g2" CL.Inv [ g1 ] in
  let q = B.gate b ~name:"q" CL.Dff [ B.unconnected ] in
  let g3 = B.gate b ~name:"g3" CL.And2 [ g2; q ] in
  B.connect_pin b q ~pin:0 g3;
  ignore (B.output b "out" g3);
  B.freeze b

let test_builder_basics () =
  let nl = tiny () in
  Alcotest.(check int) "nodes" 7 (N.size nl);
  Alcotest.(check int) "gates" 4 (N.gate_count nl);
  Alcotest.(check int) "inputs" 2 (Array.length (N.inputs nl));
  Alcotest.(check int) "outputs" 1 (Array.length (N.outputs nl));
  Alcotest.(check int) "fanouts of g1" 1 (Array.length (N.fanouts nl (N.find nl "g1")));
  Alcotest.(check int) "fanouts of g3" 2 (Array.length (N.fanouts nl (N.find nl "g3")))

let test_validate_ok () =
  match N.validate (tiny ()) with
  | Ok () -> ()
  | Error es -> Alcotest.failf "unexpected: %s" (String.concat "; " es)

let test_duplicate_name () =
  let b = B.create lib in
  ignore (B.input b "a");
  Alcotest.check_raises "dup"
    (Invalid_argument "Netlist.Builder: duplicate name a") (fun () ->
      ignore (B.input b "a"))

let test_wrong_arity () =
  let b = B.create lib in
  let a = B.input b "a" in
  Alcotest.check_raises "arity"
    (Invalid_argument "Netlist.Builder.gate: NAND2_X1 expects 2 pins, got 1")
    (fun () -> ignore (B.gate b CL.Nand2 [ a ]))

let test_unconnected_rejected () =
  let b = B.create lib in
  let a = B.input b "a" in
  ignore a;
  ignore (B.gate b ~name:"f" CL.Dff [ B.unconnected ]);
  Alcotest.check_raises "freeze fails"
    (Invalid_argument "Netlist.Builder.freeze: f pin 0 unconnected")
    (fun () -> ignore (B.freeze b))

let test_sealed_builder () =
  let b = B.create lib in
  ignore (B.input b "a");
  ignore (B.freeze b);
  Alcotest.check_raises "sealed" (Invalid_argument "Netlist.Builder: sealed")
    (fun () -> ignore (B.input b "z"))

let test_topo_order () =
  let nl = tiny () in
  let order = N.topo_order nl in
  Alcotest.(check int) "covers all nodes" (N.size nl) (Array.length order);
  let pos = Array.make (N.size nl) 0 in
  Array.iteri (fun k i -> pos.(i) <- k) order;
  Array.iter
    (fun g ->
      if not (N.is_sequential nl g) then
        Array.iter
          (fun f ->
            Alcotest.(check bool) "fanin first" true (pos.(f) < pos.(g)))
          (N.fanins nl g))
    (N.gates nl)

let test_combinational_cycle_detected () =
  let b = B.create lib in
  let a = B.input b "a" in
  let g1 = B.gate b ~name:"c1" CL.And2 [ a; B.unconnected ] in
  let g2 = B.gate b ~name:"c2" CL.Inv [ g1 ] in
  B.connect_pin b g1 ~pin:1 g2;
  ignore (B.output b "o" g2);
  let nl = B.freeze b in
  (match N.validate nl with
  | Ok () -> Alcotest.fail "cycle not detected"
  | Error es ->
    Alcotest.(check bool) "mentions cycle" true
      (List.exists (fun e -> Tsupport.contains e "cycle") es));
  Alcotest.(check bool) "topo raises" true
    (match N.topo_order nl with
    | exception N.Combinational_cycle _ -> true
    | _ -> false)

let test_dff_feedback_legal () =
  let nl = tiny () in
  match N.validate nl with
  | Ok () -> ()
  | Error es -> Alcotest.failf "dff loop flagged: %s" (String.concat ";" es)

let test_stats_and_width () =
  let nl = tiny () in
  let stats = N.stats nl in
  Alcotest.(check (option int)) "one nand" (Some 1)
    (List.assoc_opt "NAND2_X1" stats);
  Alcotest.(check bool) "width positive" true (N.total_width_sites nl > 0)

let test_resize () =
  let nl = tiny () in
  let nl' =
    N.resize nl (fun g ->
        if N.name nl g = "g1" then Some CL.X4 else None)
  in
  Alcotest.(check string) "g1 resized" "NAND2_X4"
    (N.cell nl' (N.find nl' "g1")).CL.name;
  Alcotest.(check string) "g2 untouched" "INV_X1"
    (N.cell nl' (N.find nl' "g2")).CL.name;
  Alcotest.(check int) "same size" (N.size nl) (N.size nl')

let test_simulate_gates () =
  let nl = tiny () in
  (* out = and(inv(nand(a,b)), q); q starts 0 so out=0; after a clock with
     a=b=1: nand=0, inv=1, and(1, q)... q captures out. *)
  let s = Sim.eval nl ~inputs:[ ("a", true); ("b", true) ] in
  Alcotest.(check bool) "g2 = a&b" true (Sim.value s (N.find nl "g2"));
  Alcotest.(check bool) "out 0 initially" false (Sim.output nl s "out")

let test_simulate_missing_input () =
  let nl = tiny () in
  Alcotest.(check bool) "raises" true
    (match Sim.eval nl ~inputs:[ ("a", true) ] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_simulate_step () =
  (* toggle flip-flop: q = dff(inv(q)) *)
  let b = B.create lib in
  let a = B.input b "en" in
  ignore a;
  let q = B.gate b ~name:"q" CL.Dff [ B.unconnected ] in
  let nq = B.gate b ~name:"nq" CL.Inv [ q ] in
  B.connect_pin b q ~pin:0 nq;
  ignore (B.output b "o" q);
  let nl = B.freeze b in
  let s0 = Sim.eval nl ~inputs:[ ("en", false) ] in
  Alcotest.(check bool) "q=0" false (Sim.output nl s0 "o");
  let s1 = Sim.step nl s0 in
  Alcotest.(check bool) "q=1" true (Sim.output nl s1 "o");
  let s2 = Sim.step nl s1 in
  Alcotest.(check bool) "q=0 again" false (Sim.output nl s2 "o")

(* Logic gadget truth tables via simulation. *)
let gadget2 build =
  let b = B.create lib in
  let x = B.input b "x" in
  let y = B.input b "y" in
  let r = build b x y in
  ignore (B.output b "r" r);
  B.freeze b

let check_truth2 name build f =
  let nl = gadget2 build in
  List.iter
    (fun (x, y) ->
      let s = Sim.eval nl ~inputs:[ ("x", x); ("y", y) ] in
      Alcotest.(check bool)
        (Printf.sprintf "%s(%b,%b)" name x y)
        (f x y) (Sim.output nl s "r"))
    [ (false, false); (false, true); (true, false); (true, true) ]

let test_logic_xor () = check_truth2 "xor" (fun b x y -> L.xor2 b x y) ( <> )
let test_logic_xnor () = check_truth2 "xnor" (fun b x y -> L.xnor2 b x y) ( = )

let test_logic_mux () =
  let b = B.create lib in
  let s = B.input b "s" in
  let x = B.input b "x" in
  let y = B.input b "y" in
  ignore (B.output b "r" (L.mux2 b ~sel:s x y));
  let nl = B.freeze b in
  List.iter
    (fun (sv, xv, yv) ->
      let st = Sim.eval nl ~inputs:[ ("s", sv); ("x", xv); ("y", yv) ] in
      Alcotest.(check bool) "mux" (if sv then yv else xv)
        (Sim.output nl st "r"))
    [
      (false, true, false); (false, false, true);
      (true, true, false); (true, false, true);
    ]

let test_logic_const () =
  let b = B.create lib in
  let x = B.input b "x" in
  ignore (B.output b "zero" (L.const_zero b ~any:x));
  ignore (B.output b "one" (L.const_one b ~any:x));
  let nl = B.freeze b in
  List.iter
    (fun xv ->
      let s = Sim.eval nl ~inputs:[ ("x", xv) ] in
      Alcotest.(check bool) "zero" false (Sim.output nl s "zero");
      Alcotest.(check bool) "one" true (Sim.output nl s "one"))
    [ false; true ]

let test_full_adders_equivalent () =
  List.iter
    (fun maj ->
      let b = B.create lib in
      let x = B.input b "x" and y = B.input b "y" and c = B.input b "c" in
      let s, co = (if maj then L.full_adder_maj else L.full_adder) b x y c in
      ignore (B.output b "s" s);
      ignore (B.output b "co" co);
      let nl = B.freeze b in
      List.iter
        (fun (xv, yv, cv) ->
          let st =
            Sim.eval nl ~inputs:[ ("x", xv); ("y", yv); ("c", cv) ]
          in
          let total =
            (if xv then 1 else 0) + (if yv then 1 else 0) + if cv then 1 else 0
          in
          Alcotest.(check bool) "sum" (total land 1 = 1) (Sim.output nl st "s");
          Alcotest.(check bool) "carry" (total >= 2) (Sim.output nl st "co"))
        [
          (false, false, false); (false, false, true); (false, true, false);
          (false, true, true); (true, false, false); (true, false, true);
          (true, true, false); (true, true, true);
        ])
    [ false; true ]

let test_xor_tree_parity () =
  let b = B.create lib in
  let xs = List.init 7 (fun i -> B.input b (Printf.sprintf "x%d" i)) in
  ignore (B.output b "p" (L.xor_tree b xs));
  let nl = B.freeze b in
  let rng = Fbb_util.Rng.create ~seed:5 in
  for _ = 1 to 20 do
    let bits = List.init 7 (fun i -> (Printf.sprintf "x%d" i, Fbb_util.Rng.bool rng)) in
    let expected = List.fold_left (fun a (_, v) -> a <> v) false bits in
    let s = Sim.eval nl ~inputs:bits in
    Alcotest.(check bool) "parity" expected (Sim.output nl s "p")
  done

let test_bench_roundtrip () =
  let nl = tiny () in
  let text = Bench.to_string nl in
  let nl' = Bench.parse text in
  Alcotest.(check int) "gates preserved" (N.gate_count nl) (N.gate_count nl');
  Alcotest.(check int) "inputs preserved"
    (Array.length (N.inputs nl))
    (Array.length (N.inputs nl'));
  match N.validate nl' with
  | Ok () -> ()
  | Error es -> Alcotest.failf "invalid roundtrip: %s" (String.concat ";" es)

let test_bench_parse_basic () =
  let nl =
    Bench.parse
      "# comment\nINPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NAND(a, b)\n"
  in
  Alcotest.(check int) "one gate" 1 (N.gate_count nl);
  let s = Sim.eval nl ~inputs:[ ("a", true); ("b", true) ] in
  Alcotest.(check bool) "nand" false (Sim.value s (N.find nl "y"))

let test_bench_xor_synthesis () =
  let nl =
    Bench.parse "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = XOR(a, b)\n"
  in
  List.iter
    (fun (a, b) ->
      let s = Sim.eval nl ~inputs:[ ("a", a); ("b", b) ] in
      Alcotest.(check bool) "xor value" (a <> b) (Sim.value s (N.find nl "y")))
    [ (false, false); (false, true); (true, false); (true, true) ]

let test_bench_wide_gate () =
  let nl =
    Bench.parse
      "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nINPUT(e)\nOUTPUT(y)\n\
       y = AND(a, b, c, d, e)\n"
  in
  let case vals expected =
    let s =
      Sim.eval nl
        ~inputs:(List.map2 (fun n v -> (n, v)) [ "a"; "b"; "c"; "d"; "e" ] vals)
    in
    Alcotest.(check bool) "wide and" expected (Sim.value s (N.find nl "y"))
  in
  case [ true; true; true; true; true ] true;
  case [ true; true; false; true; true ] false

let test_bench_dff_forward_reference () =
  let nl =
    Bench.parse
      "INPUT(a)\nOUTPUT(q)\nq = DFF(n)\nn = NOT(q2)\nq2 = AND(q, a)\n"
  in
  match N.validate nl with
  | Ok () -> ()
  | Error es -> Alcotest.failf "feedback rejected: %s" (String.concat ";" es)

let test_bench_errors () =
  Alcotest.(check bool) "bad statement" true
    (match Bench.parse "WIBBLE(a)\n" with
    | exception Bench.Parse_error _ -> true
    | _ -> false);
  Alcotest.(check bool) "undefined signal" true
    (match Bench.parse "INPUT(a)\nOUTPUT(y)\ny = AND(a, zz)\n" with
    | exception Bench.Parse_error _ -> true
    | _ -> false)

let test_bench_nand4_and_xnor () =
  let nl =
    Bench.parse
      "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nOUTPUT(y)\nOUTPUT(z)\n\
       y = NAND(a, b, c, d)\nz = XNOR(a, b, c)\n"
  in
  let case (a, b0, c, d0) =
    let s =
      Sim.eval nl
        ~inputs:[ ("a", a); ("b", b0); ("c", c); ("d", d0) ]
    in
    Alcotest.(check bool) "nand4" (not (a && b0 && c && d0))
      (Sim.value s (N.find nl "y"));
    Alcotest.(check bool) "xnor3"
      (not ((a <> b0) <> c))
      (Sim.value s (N.find nl "z"))
  in
  List.iter case
    [ (true, true, true, true); (true, false, true, true);
      (false, false, false, false); (true, true, false, true) ]

let test_simulate_bus_helpers () =
  let assigns = Sim.input_bus ~prefix:"a" ~width:4 0b1010 in
  Alcotest.(check (list (pair string bool))) "encoding"
    [ ("a0", false); ("a1", true); ("a2", false); ("a3", true) ]
    assigns

let test_bench_drive_annotation () =
  let nl = Bench.parse "INPUT(a)\nOUTPUT(y)\ny = NOT(a) # X4\n" in
  Alcotest.(check string) "drive kept" "INV_X4"
    (N.cell nl (N.find nl "y")).CL.name

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"random module is structurally valid" ~count:10
      (int_range 1 1_000_000)
      (fun seed ->
        let nl = Fbb_netlist.Generators.random_module ~seed ~gates:300 () in
        N.gate_count nl = 300 && N.validate nl = Ok ());
    Test.make ~name:"prefix_add computes addition" ~count:60
      (triple (int_range 0 255) (int_range 0 255) bool)
      (fun (x, y, cin) ->
        let b = B.create lib in
        let xs = List.init 8 (fun i -> B.input b (Printf.sprintf "a%d" i)) in
        let ys = List.init 8 (fun i -> B.input b (Printf.sprintf "b%d" i)) in
        let c = B.input b "cin" in
        let sums, cout = L.prefix_add b xs ys ~cin:c in
        List.iteri
          (fun i s -> ignore (B.output b (Printf.sprintf "s%d$po" i) s))
          sums;
        ignore (B.output b "cout$po" cout);
        let nl = B.freeze b in
        let inputs =
          Sim.input_bus ~prefix:"a" ~width:8 x
          @ Sim.input_bus ~prefix:"b" ~width:8 y
          @ [ ("cin", cin) ]
        in
        let s = Sim.eval nl ~inputs in
        let total = x + y + if cin then 1 else 0 in
        Sim.bus_value nl s ~prefix:"s" = total land 0xff
        && Sim.value s (N.find nl "cout$po") = (total > 0xff));
  ]

let suite =
  [
    ("builder basics", `Quick, test_builder_basics);
    ("validate ok", `Quick, test_validate_ok);
    ("duplicate name", `Quick, test_duplicate_name);
    ("wrong arity", `Quick, test_wrong_arity);
    ("unconnected pin rejected", `Quick, test_unconnected_rejected);
    ("sealed builder", `Quick, test_sealed_builder);
    ("topological order", `Quick, test_topo_order);
    ("combinational cycle detected", `Quick, test_combinational_cycle_detected);
    ("dff feedback legal", `Quick, test_dff_feedback_legal);
    ("stats and width", `Quick, test_stats_and_width);
    ("resize", `Quick, test_resize);
    ("simulate gates", `Quick, test_simulate_gates);
    ("simulate missing input", `Quick, test_simulate_missing_input);
    ("simulate step", `Quick, test_simulate_step);
    ("logic xor", `Quick, test_logic_xor);
    ("logic xnor", `Quick, test_logic_xnor);
    ("logic mux", `Quick, test_logic_mux);
    ("logic const", `Quick, test_logic_const);
    ("full adders equivalent", `Quick, test_full_adders_equivalent);
    ("xor tree parity", `Quick, test_xor_tree_parity);
    ("bench roundtrip", `Quick, test_bench_roundtrip);
    ("bench parse basic", `Quick, test_bench_parse_basic);
    ("bench xor synthesis", `Quick, test_bench_xor_synthesis);
    ("bench wide gate", `Quick, test_bench_wide_gate);
    ("bench dff forward reference", `Quick, test_bench_dff_forward_reference);
    ("bench parse errors", `Quick, test_bench_errors);
    ("bench drive annotation", `Quick, test_bench_drive_annotation);
    ("bench nand4 and xnor", `Quick, test_bench_nand4_and_xnor);
    ("simulate bus helpers", `Quick, test_simulate_bus_helpers);
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_tests
