(* Tests for the seeded deterministic fault-injection registry
   (Fbb_fault): replayable decisions, the referee pause, exception
   taxonomy and per-site statistics. *)

module Fault = Fbb_fault.Fault

let with_faults ~rate ~seed f =
  Fault.configure ~rate ~seed;
  Fun.protect ~finally:Fault.clear f

let fires site n = List.init n (fun _ -> Fault.fire site)

let test_inactive_by_default () =
  Fault.clear ();
  Alcotest.(check bool) "not active" false (Fault.active ());
  Alcotest.(check bool) "never fires" false (Fault.fire "x");
  (* Disabled sites are plain no-ops. *)
  Fault.inject "x";
  Fault.inject_transient "x"

let test_rate_extremes () =
  with_faults ~rate:1.0 ~seed:3 (fun () ->
      Alcotest.(check bool) "rate 1 always fires" true
        (List.for_all Fun.id (fires "s" 50)));
  with_faults ~rate:0.0 ~seed:3 (fun () ->
      Alcotest.(check bool) "rate 0 never fires" false
        (List.exists Fun.id (fires "s" 50)))

let test_decisions_replayable () =
  (* The n-th evaluation of a site is a pure function of
     (seed, site, n): reconfiguring with the same pair replays the
     exact decision sequence. *)
  let record () =
    with_faults ~rate:0.3 ~seed:11 (fun () -> (fires "a" 200, fires "b" 200))
  in
  let a1, b1 = record () in
  let a2, b2 = record () in
  Alcotest.(check bool) "same (rate, seed) replays decisions" true
    (a1 = a2 && b1 = b2);
  Alcotest.(check bool) "sites decorrelated" true (a1 <> b1);
  let a3 = with_faults ~rate:0.3 ~seed:12 (fun () -> fires "a" 200) in
  Alcotest.(check bool) "seed changes decisions" true (a1 <> a3);
  let hits = List.length (List.filter Fun.id a1) in
  Alcotest.(check bool) "rate roughly respected" true (hits > 20 && hits < 140)

let test_with_paused () =
  with_faults ~rate:1.0 ~seed:1 (fun () ->
      ignore (Fault.fire "p");
      let before = Fault.stats () in
      Fault.with_paused (fun () ->
          Alcotest.(check bool) "inactive inside" false (Fault.active ());
          Alcotest.(check bool) "no fire inside" false (Fault.fire "p");
          Fault.with_paused (fun () ->
              Alcotest.(check bool) "nestable" false (Fault.fire "p")));
      Alcotest.(check bool) "counters frozen while paused" true
        (Fault.stats () = before);
      Alcotest.(check bool) "active again" true (Fault.active ());
      Alcotest.(check bool) "fires again" true (Fault.fire "p"))

let test_exceptions_and_stats () =
  with_faults ~rate:1.0 ~seed:7 (fun () ->
      (match Fault.inject "hard" with
      | () -> Alcotest.fail "expected Injected"
      | exception Fault.Injected { site = "hard"; ordinal = _ } -> ());
      (match Fault.inject_transient "soft" with
      | () -> Alcotest.fail "expected Transient"
      | exception (Fault.Transient _ as e) ->
        Alcotest.(check bool) "is_transient recognizes it" true
          (Fault.is_transient e));
      Alcotest.(check bool) "Injected is not transient" false
        (Fault.is_transient (Fault.Injected { site = "x"; ordinal = 0 }));
      let stats = Fault.stats () in
      let entry site = List.find_opt (fun (s, _, _) -> s = site) stats in
      Alcotest.(check bool) "hard site counted" true
        (entry "hard" = Some ("hard", 1, 1));
      Alcotest.(check bool) "soft site counted" true
        (entry "soft" = Some ("soft", 1, 1)))

let test_pool_contains_injected_faults () =
  (* End to end through the pool: an injected hard fault surfaces as
     Worker_error, a transient one is retried away — at any width. *)
  let module Pool = Fbb_par.Pool in
  let at_jobs n f =
    let prev = Pool.jobs () in
    Pool.set_jobs n;
    Fun.protect ~finally:(fun () -> Pool.set_jobs prev) f
  in
  List.iter
    (fun jobs ->
      at_jobs jobs @@ fun () ->
      with_faults ~rate:1.0 ~seed:5 (fun () ->
          match Pool.parallel_map ~chunk:1 [| 1; 2; 3 |] ~f:succ with
          | _ -> Alcotest.fail "expected Worker_error"
          | exception Pool.Worker_error { task = 0; exn } ->
            Alcotest.(check bool)
              (Printf.sprintf "injected exn surfaces (jobs=%d)" jobs)
              true
              (match exn with
              | Fault.Injected _ | Fault.Transient _ -> true
              | _ -> false));
      (* The pool must stay serviceable once injection is off. *)
      with_faults ~rate:0.0 ~seed:5 (fun () ->
          Alcotest.(check (array int))
            (Printf.sprintf "pool intact after faults (jobs=%d)" jobs)
            [| 2; 3; 4 |]
            (Pool.parallel_map ~chunk:1 [| 1; 2; 3 |] ~f:succ)))
    [ 1; 4 ]

let test_serve_fault_storm () =
  (* A seeded fault storm at the serve.accept / serve.read sites: every
     request still gets exactly one typed response (degraded to
     Rejected Faulted when a site fires), the daemon never dies, and
     the telemetry /healthz endpoint keeps answering throughout. *)
  let module Server = Fbb_serve.Server in
  let module Client = Fbb_serve.Client in
  let module P = Fbb_serve.Protocol in
  let config =
    { Server.default_config with port = 0; queue_capacity = 16; batch_max = 4 }
  in
  let sampler = Fbb_obs.Telemetry.start ~tick_s:0.05 () in
  match Fbb_obs.Telemetry.serve ~port:0 () with
  | Error m -> Alcotest.failf "telemetry: %s" m
  | Ok tsrv ->
    Fun.protect ~finally:(fun () ->
        Fbb_obs.Telemetry.shutdown tsrv;
        Fbb_obs.Telemetry.stop sampler)
    @@ fun () ->
    (* The server starts before injection goes live so its own bind
       isn't the thing being faulted — the sites under test are per
       connection and per frame. *)
    (match Server.start ~config () with
    | Error m -> Alcotest.failf "server start: %s" m
    | Ok srv ->
      Fun.protect ~finally:(fun () -> Server.stop srv) @@ fun () ->
      let healthz () =
        let url =
          Printf.sprintf "http://127.0.0.1:%d/healthz"
            (Fbb_obs.Telemetry.port tsrv)
        in
        match Fault.with_paused (fun () -> Fbb_obs.Telemetry.http_get url) with
        | Ok _ -> ()
        | Error m -> Alcotest.failf "healthz during storm: %s" m
      in
      let solved = ref 0 and faulted = ref 0 and other = ref 0 in
      with_faults ~rate:0.3 ~seed:9 (fun () ->
          for i = 1 to 30 do
            (* Fresh connection per request: every accept and every
               read evaluates its fault site. *)
            match Client.connect ~port:(Server.port srv) () with
            | Error m -> Alcotest.failf "connect (storm %d): %s" i m
            | Ok c ->
              Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
              let req =
                P.Solve
                  {
                    id = Printf.sprintf "storm-%d" i;
                    client = None;
                    workload = P.Generated { seed = 5; gates = 80; rows = 3 };
                    beta = 0.05;
                    max_clusters = 3;
                    deadline_ms = None;
                    work_budget = Some 2_000;
                  }
              in
              (match Client.rpc c req with
              | Ok (P.Solved _) -> incr solved
              | Ok (P.Rejected { reject = P.Faulted _; _ }) -> incr faulted
              | Ok r ->
                incr other;
                Alcotest.failf "unexpected response %s" (P.encode_response r)
              | Error m ->
                Alcotest.failf "request %d escaped the typed protocol: %s" i m);
              if i mod 10 = 0 then healthz ()
          done);
      Alcotest.(check int) "every request answered" 30
        (!solved + !faulted + !other);
      Alcotest.(check bool) "storm degraded some requests" true (!faulted > 0);
      Alcotest.(check bool) "server still solved through the storm" true
        (!solved > 0);
      (* Injection off: the daemon is fully serviceable afterwards. *)
      match Client.connect ~port:(Server.port srv) () with
      | Error m -> Alcotest.failf "connect after storm: %s" m
      | Ok c ->
        Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
        (match Client.rpc c (P.Ping { id = "after" }) with
        | Ok (P.Pong { id = "after" }) -> ()
        | Ok r ->
          Alcotest.failf "expected pong, got %s" (P.encode_response r)
        | Error m -> Alcotest.failf "ping after storm: %s" m))

let test_solver_storm () =
  (* A targeted chaos run at the solver sites only: serve.solver_crash
     kills the solver thread mid-batch, serve.solver_stall parks it
     until the watchdog's stall threshold fires. Every affected request
     must come back as a typed Faulted reject (the watchdog fails the
     batch and restarts the solver under a fresh generation), /healthz
     must answer throughout, the circuit breaker must never wedge, and
     the server must be fully serviceable once injection stops. *)
  let module Server = Fbb_serve.Server in
  let module Client = Fbb_serve.Client in
  let module P = Fbb_serve.Protocol in
  let config =
    {
      Server.default_config with
      port = 0;
      queue_capacity = 32;
      stall_threshold_s = Some 0.15;
      watchdog_tick_s = 0.02;
      breaker_limit = 5;
      breaker_cooldown_s = 0.1;
    }
  in
  let sampler = Fbb_obs.Telemetry.start ~tick_s:0.05 () in
  match Fbb_obs.Telemetry.serve ~port:0 () with
  | Error m -> Alcotest.failf "telemetry: %s" m
  | Ok tsrv ->
    Fun.protect ~finally:(fun () ->
        Fbb_obs.Telemetry.shutdown tsrv;
        Fbb_obs.Telemetry.stop sampler)
    @@ fun () ->
    (match Server.start ~config () with
    | Error m -> Alcotest.failf "server start: %s" m
    | Ok srv ->
      Fun.protect ~finally:(fun () -> Server.stop srv) @@ fun () ->
      let healthz () =
        let url =
          Printf.sprintf "http://127.0.0.1:%d/healthz"
            (Fbb_obs.Telemetry.port tsrv)
        in
        match Fault.with_paused (fun () -> Fbb_obs.Telemetry.http_get url) with
        | Ok _ -> ()
        | Error m -> Alcotest.failf "healthz during solver storm: %s" m
      in
      let req i =
        P.Solve
          {
            id = Printf.sprintf "solver-storm-%d" i;
            client = None;
            workload = P.Generated { seed = 5; gates = 80; rows = 3 };
            beta = 0.05;
            max_clusters = 3;
            deadline_ms = None;
            work_budget = Some 2_000;
          }
      in
      let solved = ref 0 and faulted = ref 0 and shed = ref 0 in
      with_faults ~rate:0.0 ~seed:31 (fun () ->
          (* Global rate 0 + per-site overrides: accept/read stay
             clean, only the solver is under attack. *)
          Fault.set_site_rate "serve.solver_crash" 0.3;
          Fault.set_site_rate "serve.solver_stall" 0.2;
          for i = 1 to 25 do
            match Client.connect ~port:(Server.port srv) () with
            | Error m -> Alcotest.failf "connect (storm %d): %s" i m
            | Ok c ->
              Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
              (match Client.rpc c (req i) with
              | Ok (P.Solved _) -> incr solved
              | Ok (P.Rejected { reject = P.Faulted _; _ }) -> incr faulted
              | Ok (P.Rejected { reject = P.Shutting_down | P.Overload _; _ })
                ->
                (* A tripped breaker flushing the lane is a legal typed
                   outcome mid-storm; it must heal below. *)
                incr shed
              | Ok r ->
                Alcotest.failf "unexpected response %s" (P.encode_response r)
              | Error m ->
                Alcotest.failf "request %d escaped the typed protocol: %s" i m);
              if i mod 8 = 0 then healthz ()
          done);
      Alcotest.(check int) "every request answered" 25
        (!solved + !faulted + !shed);
      Alcotest.(check bool) "storm killed some batches" true (!faulted > 0);
      Alcotest.(check bool) "solver restarts recorded" true
        (Fbb_obs.Counter.read (Fbb_obs.Counter.make "serve.solver.restarts")
        > 0);
      (* Injection is off: the breaker (if it ever opened) must close
         and the daemon must serve again. The half-open probe needs the
         cooldown, so allow a few attempts. *)
      let rec recover tries =
        if tries = 0 then Alcotest.fail "server never recovered from storm"
        else
          match Client.connect ~port:(Server.port srv) () with
          | Error m -> Alcotest.failf "connect after storm: %s" m
          | Ok c -> (
            Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
            match Client.rpc c (req 1000) with
            | Ok (P.Solved _) -> ()
            | Ok (P.Rejected _) ->
              Unix.sleepf 0.15;
              recover (tries - 1)
            | Ok r ->
              Alcotest.failf "unexpected recovery response %s"
                (P.encode_response r)
            | Error m -> Alcotest.failf "recovery rpc: %s" m)
      in
      recover 20;
      Alcotest.(check bool) "breaker never wedges" false
        (Server.breaker_open srv))

let suite =
  [
    ("inactive by default", `Quick, test_inactive_by_default);
    ("rate extremes", `Quick, test_rate_extremes);
    ("decisions replayable", `Quick, test_decisions_replayable);
    ("with_paused", `Quick, test_with_paused);
    ("exceptions and stats", `Quick, test_exceptions_and_stats);
    ("pool contains injected faults", `Quick,
     test_pool_contains_injected_faults);
    ("serve fault storm", `Quick, test_serve_fault_storm);
    ("solver crash/stall storm", `Quick, test_solver_storm);
  ]
