(* Tests for Fbb_obs: spans, counters, sinks, JSONL traces. *)

module Obs = Fbb_obs

(* A sink that records every event, for asserting on the raw stream. *)
let recording () =
  let events = ref [] in
  ( { Obs.Sink.emit = (fun e -> events := e :: !events);
      flush = (fun () -> ()) },
    fun () -> List.rev !events )

let fresh =
  let n = ref 0 in
  fun prefix ->
    incr n;
    Printf.sprintf "%s.%d" prefix !n

(* ----- spans ------------------------------------------------------------ *)

let test_span_nesting () =
  let sink, events = recording () in
  let r =
    Obs.Sink.with_installed sink (fun () ->
        Obs.Span.with_ ~name:"outer" (fun () ->
            Obs.Span.with_ ~name:"inner" (fun () -> ());
            Obs.Span.with_ ~name:"inner" (fun () -> 41 + 1)))
  in
  Alcotest.(check int) "value returned through spans" 42 r;
  let shape =
    List.filter_map
      (function
        | Obs.Event.Span_begin { name; depth; _ } -> Some (`B, name, depth)
        | Obs.Event.Span_end { name; depth; _ } -> Some (`E, name, depth)
        | _ -> None)
      (events ())
  in
  Alcotest.(check int) "six span events" 6 (List.length shape);
  Alcotest.(check bool) "begin/end pairing and depths" true
    (shape
    = [
        (`B, "outer", 0);
        (`B, "inner", 1);
        (`E, "inner", 1);
        (`B, "inner", 1);
        (`E, "inner", 1);
        (`E, "outer", 0);
      ])

let test_span_exception_safe () =
  let sink, events = recording () in
  (try
     Obs.Sink.with_installed sink (fun () ->
         Obs.Span.with_ ~name:"doomed" (fun () -> failwith "boom"))
   with Failure _ -> ());
  let opens, closes =
    List.fold_left
      (fun (b, e) ev ->
        match ev with
        | Obs.Event.Span_begin _ -> (b + 1, e)
        | Obs.Event.Span_end _ -> (b, e + 1)
        | _ -> (b, e))
      (0, 0) (events ())
  in
  Alcotest.(check (pair int int)) "end emitted despite raise" (1, 1)
    (opens, closes)

let test_span_durations_aggregate () =
  let agg = Obs.Aggregate.create () in
  Obs.Sink.with_installed (Obs.Aggregate.sink agg) (fun () ->
      for _ = 1 to 3 do
        Obs.Span.with_ ~name:"work" (fun () -> Sys.opaque_identity ())
      done);
  match Obs.Aggregate.span_stat agg "work" with
  | None -> Alcotest.fail "span not aggregated"
  | Some (count, total_s, max_s) ->
    Alcotest.(check int) "count" 3 count;
    Alcotest.(check bool) "durations sane" true
      (total_s >= 0.0 && max_s >= 0.0 && max_s <= total_s +. 1e-12)

(* ----- counters --------------------------------------------------------- *)

let test_counter_totals_without_sink () =
  Alcotest.(check bool) "no sink installed" false (Obs.Sink.enabled ());
  let c = Obs.Counter.make (fresh "t.plain") in
  Obs.Counter.add c 5;
  Obs.Counter.incr c;
  Alcotest.(check int) "total accumulates sink-free" 6 (Obs.Counter.read c);
  Obs.Counter.reset c;
  Alcotest.(check int) "reset" 0 (Obs.Counter.read c)

let test_counter_registration_idempotent () =
  let name = fresh "t.idem" in
  let a = Obs.Counter.make name in
  let b = Obs.Counter.make name in
  Obs.Counter.add a 2;
  Obs.Counter.add b 3;
  Alcotest.(check int) "same underlying counter" 5 (Obs.Counter.read a);
  Alcotest.(check string) "name preserved" name (Obs.Counter.name b)

let test_counter_aggregation () =
  let name = fresh "t.agg" in
  let c = Obs.Counter.make name in
  let agg = Obs.Aggregate.create () in
  Obs.Sink.with_installed (Obs.Aggregate.sink agg) (fun () ->
      Obs.Span.with_ ~name:"span" (fun () ->
          Obs.Counter.add c 4;
          Obs.Counter.incr c));
  Alcotest.(check (option int)) "deltas reach the aggregator" (Some 5)
    (Obs.Aggregate.counter_total agg name)

let test_counter_delta_attribution () =
  (* Pending deltas flush at span boundaries: increments made inside a
     span appear as Counter_add events between its begin and end. *)
  let name = fresh "t.attr" in
  let c = Obs.Counter.make name in
  let sink, events = recording () in
  Obs.Sink.with_installed sink (fun () ->
      Obs.Span.with_ ~name:"s" (fun () -> Obs.Counter.add c 7));
  let saw = ref None in
  List.iter
    (function
      | Obs.Event.Counter_add { name = n; delta; _ } when n = name ->
        saw := Some delta
      | _ -> ())
    (events ());
  Alcotest.(check (option int)) "one batched delta event" (Some 7) !saw

let test_gauge () =
  let g = Obs.Counter.Gauge.make (fresh "t.gauge") in
  Obs.Counter.Gauge.set g 2.5;
  Alcotest.(check (float 1e-12)) "gauge readback" 2.5
    (Obs.Counter.Gauge.read g)

(* ----- sink management -------------------------------------------------- *)

let test_sink_restore () =
  let sink_a, _ = recording () in
  let sink_b, events_b = recording () in
  Obs.Sink.with_installed sink_a (fun () ->
      Obs.Sink.with_installed sink_b (fun () ->
          Alcotest.(check bool) "inner enabled" true (Obs.Sink.enabled ());
          Obs.Span.with_ ~name:"inner-only" (fun () -> ()));
      Alcotest.(check bool) "outer restored" true (Obs.Sink.enabled ()));
  Alcotest.(check bool) "cleared at top level" false (Obs.Sink.enabled ());
  (* A completed span emits begin/end plus a histogram observation and
     a GC sample; only the begin/end pair is counted here. *)
  Alcotest.(check int) "inner sink saw its span" 2
    (List.length
       (List.filter
          (function
            | Obs.Event.Span_begin _ | Obs.Event.Span_end _ -> true
            | _ -> false)
          (events_b ())))

let test_suspended () =
  let sink, events = recording () in
  Obs.Sink.with_installed sink (fun () ->
      Obs.Sink.suspended (fun () ->
          Alcotest.(check bool) "suspended" false (Obs.Sink.enabled ());
          Obs.Span.with_ ~name:"invisible" (fun () -> ()));
      Alcotest.(check bool) "restored" true (Obs.Sink.enabled ()));
  Alcotest.(check int) "no events while suspended" 0
    (List.length (events ()))

let test_null_sink_noop () =
  (* The null sink must swallow the full event stream without effect;
     counters still accumulate. *)
  let c = Obs.Counter.make (fresh "t.null") in
  let r =
    Obs.Sink.with_installed Obs.Sink.null (fun () ->
        Obs.Span.with_ ~name:"nulled" (fun () ->
            Obs.Counter.add c 9;
            "ok"))
  in
  Alcotest.(check string) "value through null sink" "ok" r;
  Alcotest.(check int) "counter total intact" 9 (Obs.Counter.read c)

(* ----- JSONL round-trip ------------------------------------------------- *)

(* Minimal parser for the flat one-line objects Jsonl emits: keys are
   plain strings, values are strings or numbers, no nesting. *)
let parse_flat line =
  let n = String.length line in
  let i = ref 0 in
  let fail msg = Alcotest.failf "bad json (%s): %s" msg line in
  let expect ch =
    if !i >= n || line.[!i] <> ch then
      fail (Printf.sprintf "expected '%c' at %d" ch !i);
    incr i
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !i >= n then fail "unterminated string"
      else
        match line.[!i] with
        | '"' -> incr i
        | '\\' ->
          incr i;
          if !i >= n then fail "dangling escape";
          (match line.[!i] with
          | 'n' -> Buffer.add_char b '\n'
          | 't' -> Buffer.add_char b '\t'
          | 'r' -> Buffer.add_char b '\r'
          | 'b' -> Buffer.add_char b '\b'
          | 'u' ->
            if !i + 4 >= n then fail "short \\u";
            let code = int_of_string ("0x" ^ String.sub line (!i + 1) 4) in
            Buffer.add_char b (Char.chr (code land 0xff));
            i := !i + 4
          | c -> Buffer.add_char b c);
          incr i;
          go ()
        | c ->
          Buffer.add_char b c;
          incr i;
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !i in
    while
      !i < n
      && (match line.[!i] with
         | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
         | _ -> false)
    do
      incr i
    done;
    match float_of_string_opt (String.sub line start (!i - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  expect '{';
  let fields = ref [] in
  let rec members () =
    let key = parse_string () in
    expect ':';
    let value =
      if !i < n && line.[!i] = '"' then `S (parse_string ())
      else `F (parse_number ())
    in
    fields := (key, value) :: !fields;
    if !i < n && line.[!i] = ',' then begin
      incr i;
      members ()
    end
  in
  if not (!i < n && line.[!i] = '}') then members ();
  expect '}';
  if !i <> n then fail "trailing garbage";
  List.rev !fields

let test_jsonl_roundtrip () =
  let path = Filename.temp_file "fbb_obs" ".jsonl" in
  let counter = Obs.Counter.make (fresh "t.jsonl") in
  let cname = Obs.Counter.name counter in
  let writer = Obs.Jsonl.create path in
  Obs.Sink.with_installed (Obs.Jsonl.sink writer) (fun () ->
      Obs.Span.with_ ~name:"a \"quoted\"\nname" (fun () ->
          Obs.Span.with_ ~name:"child" (fun () -> Obs.Counter.add counter 3)));
  Obs.Jsonl.close writer;
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  Sys.remove path;
  let lines = List.rev !lines in
  Alcotest.(check bool) "trace non-empty" true (lines <> []);
  let stack = ref [] in
  let counter_sum = ref 0 in
  List.iter
    (fun line ->
      let fields = parse_flat line in
      let str k =
        match List.assoc_opt k fields with
        | Some (`S s) -> s
        | Some (`F _) | None -> Alcotest.failf "missing string %s: %s" k line
      in
      let num k =
        match List.assoc_opt k fields with
        | Some (`F f) -> f
        | Some (`S _) | None -> Alcotest.failf "missing number %s: %s" k line
      in
      Alcotest.(check bool) "timestamp present and sane" true (num "ts" >= 0.0);
      match str "ph" with
      | "B" -> stack := str "name" :: !stack
      | "E" -> begin
        match !stack with
        | top :: rest ->
          Alcotest.(check string) "end matches innermost begin" top
            (str "name");
          Alcotest.(check bool) "duration non-negative" true
            (num "dur_s" >= 0.0);
          stack := rest
        | [] -> Alcotest.failf "unbalanced end: %s" line
      end
      | "C" -> if str "name" = cname then
          counter_sum := !counter_sum + int_of_float (num "delta")
      | "G" | "H" -> ignore (num "value")
      | "M" -> ignore (num "minor_words")
      | ph -> Alcotest.failf "unknown phase %s" ph)
    lines;
  Alcotest.(check (list string)) "all spans closed" [] !stack;
  Alcotest.(check int) "counter delta survives round-trip" 3 !counter_sum

let test_event_json_escaping () =
  let j =
    Obs.Event.to_json
      (Obs.Event.Span_begin
         { name = "q\"\\\n\t"; ts = 0.5; depth = 2; dom = 0; trace = "" })
  in
  let fields = parse_flat j in
  match List.assoc_opt "name" fields with
  | Some (`S s) -> Alcotest.(check string) "escapes round-trip" "q\"\\\n\t" s
  | Some (`F _) | None -> Alcotest.fail "name field missing"

(* ----- histograms ------------------------------------------------------- *)

let test_histogram_edges () =
  let h = Obs.Histogram.create "t.hist.edges" in
  (* Zero, negative and NaN land in the bottom bucket: counted, no max. *)
  Obs.Histogram.observe h 0.0;
  Obs.Histogram.observe h (-3.0);
  Obs.Histogram.observe h Float.nan;
  Alcotest.(check int) "degenerate values counted" 3 (Obs.Histogram.count h);
  Alcotest.(check (float 0.0)) "max untouched by degenerates" 0.0
    (Obs.Histogram.max_value h);
  (match Obs.Histogram.nonzero_buckets h with
  | [ (0, 3) ] -> ()
  | bs ->
    Alcotest.failf "degenerates not in bucket 0: %s"
      (String.concat ","
         (List.map (fun (i, c) -> Printf.sprintf "%d:%d" i c) bs)));
  (* Values below the grid (2^-40) and above it (2^24) clamp to the
     first and last real bucket instead of being dropped. *)
  Obs.Histogram.observe h 1e-15;
  Obs.Histogram.observe h 1e9;
  Alcotest.(check int) "extremes counted" 5 (Obs.Histogram.count h);
  Alcotest.(check (float 0.0)) "max is exact" 1e9 (Obs.Histogram.max_value h);
  Alcotest.(check (float 0.0)) "p99 capped at the exact max" 1e9
    (Obs.Histogram.percentile h 0.99)

let test_histogram_percentile_accuracy () =
  let h = Obs.Histogram.create "t.hist.acc" in
  for i = 1 to 1000 do
    Obs.Histogram.observe h (float_of_int i *. 1e-3)
  done;
  let check_pct p expected =
    let got = Obs.Histogram.percentile h p in
    (* One log-linear bucket is 1/16 of an octave: <= 6.25% relative
       error, upper-edge biased. *)
    Alcotest.(check bool)
      (Printf.sprintf "p%.0f within a bucket width" (p *. 100.0))
      true
      (got >= expected *. 0.99 && got <= expected *. 1.07)
  in
  check_pct 0.50 0.5;
  check_pct 0.90 0.9;
  check_pct 0.99 0.99;
  Alcotest.(check (float 1e-9)) "mean exact from atomic sum" 0.5005
    (Obs.Histogram.mean h)

let test_histogram_merge_matches_combined () =
  let a = Obs.Histogram.create "t.hist.a"
  and b = Obs.Histogram.create "t.hist.b"
  and all = Obs.Histogram.create "t.hist.all" in
  let vs_a = [ 0.001; 0.004; 0.12; 7.0 ] and vs_b = [ 0.0; 0.03; 250.0 ] in
  List.iter (Obs.Histogram.observe a) vs_a;
  List.iter (Obs.Histogram.observe b) vs_b;
  List.iter (Obs.Histogram.observe all) (vs_a @ vs_b);
  let u = Obs.Histogram.union a b in
  Alcotest.(check int) "merged count" (Obs.Histogram.count all)
    (Obs.Histogram.count u);
  Alcotest.(check (float 0.0)) "merged max" (Obs.Histogram.max_value all)
    (Obs.Histogram.max_value u);
  Alcotest.(check bool) "merged buckets" true
    (Obs.Histogram.nonzero_buckets u = Obs.Histogram.nonzero_buckets all)

let qcheck_histogram_merge_associative =
  (* Bucket counts, count and max are exactly associative under union
     (float sums only approximately, so they are not compared). *)
  let gen =
    QCheck.list_of_size (QCheck.Gen.int_range 0 30)
      (QCheck.float_range (-1.0) 1e7)
  in
  QCheck.Test.make ~count:100 ~name:"histogram union is associative"
    (QCheck.triple gen gen gen)
    (fun (xs, ys, zs) ->
      let mk name vs =
        let h = Obs.Histogram.create name in
        List.iter (Obs.Histogram.observe h) vs;
        h
      in
      let a = mk "qa" xs and b = mk "qb" ys and c = mk "qc" zs in
      let l = Obs.Histogram.union (Obs.Histogram.union a b) c in
      let r = Obs.Histogram.union a (Obs.Histogram.union b c) in
      Obs.Histogram.nonzero_buckets l = Obs.Histogram.nonzero_buckets r
      && Obs.Histogram.count l = Obs.Histogram.count r
      && (Obs.Histogram.count l = 0
         || Obs.Histogram.max_value l = Obs.Histogram.max_value r))

let test_span_records_histogram () =
  let name = fresh "t.span.hist" in
  let sink, events = recording () in
  Obs.Sink.with_installed sink (fun () ->
      Obs.Span.with_ ~name (fun () -> Sys.opaque_identity ()));
  (* The duration lands both in the registry histogram and on the wire
     as a Hist_record carrying the same value. *)
  let h = Obs.Histogram.make name in
  Alcotest.(check int) "registry histogram observed the span" 1
    (Obs.Histogram.count h);
  let wire =
    List.filter_map
      (function
        | Obs.Event.Hist_record { name = n; value; _ } when n = name ->
          Some value
        | _ -> None)
      (events ())
  in
  (match wire with
  | [ v ] ->
    Alcotest.(check (float 1e-12)) "wire value = histogram sum" v
      (Obs.Histogram.sum h)
  | l -> Alcotest.failf "expected 1 Hist_record, got %d" (List.length l));
  Obs.Histogram.reset h

(* ----- GC profiling ------------------------------------------------------ *)

let test_gc_delta_monotone () =
  let before = Obs.Gcprof.sample () in
  (* Allocate enough to move minor_words for sure. *)
  let keep = ref [] in
  for i = 1 to 1000 do
    keep := Array.make 10 i :: !keep
  done;
  ignore (Sys.opaque_identity !keep);
  let after = Obs.Gcprof.sample () in
  let d = Obs.Gcprof.delta ~before ~after in
  Alcotest.(check bool) "allocation observed" true
    (d.Obs.Gcprof.minor_words > 0.0);
  Alcotest.(check bool) "all delta fields non-negative" true
    (d.Obs.Gcprof.minor_words >= 0.0
    && d.Obs.Gcprof.major_words >= 0.0
    && d.Obs.Gcprof.minor_collections >= 0
    && d.Obs.Gcprof.major_collections >= 0);
  (* Deltas against a later snapshot clamp at zero, never go negative. *)
  let clamped = Obs.Gcprof.delta ~before:after ~after:before in
  Alcotest.(check (float 0.0)) "clamped minor words" 0.0
    clamped.Obs.Gcprof.minor_words;
  Alcotest.(check int) "clamped collections" 0
    clamped.Obs.Gcprof.minor_collections

let test_span_emits_gc_sample () =
  let name = fresh "t.span.gc" in
  let sink, events = recording () in
  Obs.Sink.with_installed sink (fun () ->
      Obs.Span.with_ ~name (fun () ->
          ignore (Sys.opaque_identity (Array.make 4096 0.0))));
  let samples =
    List.filter
      (function
        | Obs.Event.Gc_sample { name = n; minor_words; _ } ->
          n = name && minor_words >= 0.0
        | _ -> false)
      (events ())
  in
  Alcotest.(check int) "one GC sample per span" 1 (List.length samples)

let test_gc_sampling_toggle () =
  let sink, events = recording () in
  Obs.Gcprof.set_enabled false;
  Fun.protect
    ~finally:(fun () -> Obs.Gcprof.set_enabled true)
    (fun () ->
      Obs.Sink.with_installed sink (fun () ->
          Obs.Span.with_ ~name:"t.gc.off" (fun () -> ())));
  Alcotest.(check int) "no GC sample when disabled" 0
    (List.length
       (List.filter
          (function Obs.Event.Gc_sample _ -> true | _ -> false)
          (events ())))

(* ----- JSONL under exceptions ------------------------------------------- *)

let test_jsonl_valid_when_raising () =
  (* Satellite guarantee: even when spanned code raises, the trace file
     closes as valid line-by-line JSON with a balanced span stream. *)
  let path = Filename.temp_file "fbb_obs_raise" ".jsonl" in
  let writer = Obs.Jsonl.create path in
  (try
     Obs.Sink.with_installed (Obs.Jsonl.sink writer) (fun () ->
         Obs.Span.with_ ~name:"outer" (fun () ->
             Obs.Span.with_ ~name:"inner" (fun () -> failwith "boom")))
   with Failure _ -> ());
  Obs.Jsonl.close writer;
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  Sys.remove path;
  let lines = List.rev !lines in
  Alcotest.(check bool) "trace non-empty" true (lines <> []);
  let stack = ref [] in
  List.iter
    (fun line ->
      (* Every line must parse as standalone JSON... *)
      match Fbb_util.Json.parse_opt line with
      | None -> Alcotest.failf "invalid JSON line: %s" line
      | Some v -> (
        match
          (Fbb_util.Json.member_str "ph" v, Fbb_util.Json.member_str "name" v)
        with
        | Some "B", Some name -> stack := name :: !stack
        | Some "E", Some name -> (
          match !stack with
          | top :: rest when top = name -> stack := rest
          | _ -> Alcotest.failf "unbalanced end: %s" line)
        | Some _, Some _ -> ()
        | _ -> Alcotest.failf "line without ph/name: %s" line))
    lines;
  (* ...and both spans must have closed despite the raise. *)
  Alcotest.(check (list string)) "balanced despite raise" [] !stack

(* ----- contexts --------------------------------------------------------- *)

let test_context_scoping () =
  Alcotest.(check (option pass)) "no context by default" None
    (Obs.Context.current ());
  Alcotest.(check string) "empty trace id by default" ""
    (Obs.Context.trace_id ());
  let a = Obs.Context.make () and b = Obs.Context.make () in
  Alcotest.(check bool) "fresh ids are unique" true (a.trace <> b.trace);
  let seen =
    Obs.Context.with_ a (fun () ->
        let outer = Obs.Context.trace_id () in
        let inner = Obs.Context.with_ b (fun () -> Obs.Context.trace_id ()) in
        (outer, inner, Obs.Context.trace_id ()))
  in
  Alcotest.(check (triple string string string)) "nesting restores"
    (a.trace, b.trace, a.trace) seen;
  Alcotest.(check string) "restored to none" "" (Obs.Context.trace_id ());
  (try
     Obs.Context.with_ a (fun () -> failwith "boom")
   with Failure _ -> ());
  Alcotest.(check string) "restored after raise" "" (Obs.Context.trace_id ())

let test_context_parent_span () =
  let sink, _ = recording () in
  let parent =
    Obs.Sink.with_installed sink (fun () ->
        Obs.Span.with_ ~name:"outer" (fun () ->
            Obs.Span.with_ ~name:"inner" (fun () ->
                (Obs.Context.make ()).parent_span)))
  in
  Alcotest.(check string) "parent is the innermost open span" "inner" parent;
  Alcotest.(check string) "span stack drained" "" (Obs.Context.innermost_span ());
  Alcotest.(check string) "top-level parent is empty" ""
    ((Obs.Context.make ()).parent_span)

let test_spans_carry_trace () =
  let sink, events = recording () in
  let ctx = Obs.Context.make ~trace:"t-spans" () in
  Obs.Sink.with_installed sink (fun () ->
      Obs.Context.with_ ctx (fun () ->
          Obs.Span.with_ ~name:"a" (fun () ->
              Obs.Span.with_ ~name:"b" (fun () -> ())));
      Obs.Span.with_ ~name:"after" (fun () -> ()));
  let traces =
    List.filter_map
      (function
        | Obs.Event.Span_begin { name; trace; _ }
        | Obs.Event.Span_end { name; trace; _ } -> Some (name, trace)
        | _ -> None)
      (events ())
  in
  List.iter
    (fun (name, trace) ->
      Alcotest.(check string)
        (Printf.sprintf "span %s trace" name)
        (if name = "after" then "" else "t-spans")
        trace)
    traces

let test_pool_propagates_context () =
  (* Every span opened inside a parallel section — wherever it runs —
     must carry the submitting request's trace id. *)
  let sink, events = recording () in
  let ctx = Obs.Context.make ~trace:"t-pool" () in
  Fbb_par.Pool.set_jobs 4;
  Obs.Sink.with_installed sink (fun () ->
      Obs.Context.with_ ctx (fun () ->
          Fbb_par.Pool.parallel_for ~chunk:1 ~n:16 (fun i ->
              Obs.Span.with_ ~name:"task" (fun () ->
                  ignore (Sys.opaque_identity i)))));
  Fbb_par.Pool.set_jobs 1;
  let spans =
    List.filter_map
      (function
        | Obs.Event.Span_begin { name = "task"; trace; dom; _ } ->
          Some (trace, dom)
        | _ -> None)
      (events ())
  in
  Alcotest.(check int) "all 16 task spans recorded" 16 (List.length spans);
  List.iter
    (fun (trace, dom) ->
      Alcotest.(check string)
        (Printf.sprintf "task span on domain %d is traced" dom)
        "t-pool" trace)
    spans

(* ----- series ----------------------------------------------------------- *)

let test_series_ring () =
  let s = Obs.Series.create ~cap:4 (fresh "t.series") in
  Alcotest.(check int) "empty" 0 (Obs.Series.length s);
  Alcotest.(check (option (pair (float 0.0) (float 0.0)))) "no last" None
    (Obs.Series.last s);
  for i = 1 to 3 do
    Obs.Series.push s ~ts:(float_of_int i) (float_of_int (10 * i))
  done;
  Alcotest.(check int) "partial fill" 3 (Obs.Series.length s);
  Alcotest.(check bool) "oldest first" true
    (Obs.Series.points s = [| (1.0, 10.0); (2.0, 20.0); (3.0, 30.0) |]);
  for i = 4 to 6 do
    Obs.Series.push s ~ts:(float_of_int i) (float_of_int (10 * i))
  done;
  Alcotest.(check int) "capped" 4 (Obs.Series.length s);
  Alcotest.(check bool) "wraparound evicts oldest" true
    (Obs.Series.values s = [| 30.0; 40.0; 50.0; 60.0 |]);
  Alcotest.(check (option (pair (float 0.0) (float 0.0)))) "last"
    (Some (6.0, 60.0)) (Obs.Series.last s);
  Alcotest.(check bool) "zero cap rejected" true
    (match Obs.Series.create ~cap:0 "t.bad" with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_series_registry () =
  let name = fresh "t.series.reg" in
  let a = Obs.Series.make ~cap:8 name in
  let b = Obs.Series.make name in
  Obs.Series.push a ~ts:1.0 5.0;
  Alcotest.(check int) "same underlying ring" 1 (Obs.Series.length b);
  Alcotest.(check bool) "registered" true
    (List.exists (fun s -> Obs.Series.name s = name) (Obs.Series.registered ()))

(* ----- histogram snapshots ---------------------------------------------- *)

let test_histogram_percentile_opt () =
  let h = Obs.Histogram.create (fresh "t.hist.opt") in
  Alcotest.(check (option (float 0.0))) "empty -> None" None
    (Obs.Histogram.percentile_opt h 0.5);
  Obs.Histogram.observe h 2.0;
  Alcotest.(check bool) "non-empty -> Some" true
    (Obs.Histogram.percentile_opt h 0.5 <> None)

let test_histogram_interval_sub () =
  let h = Obs.Histogram.create (fresh "t.hist.iv") in
  Obs.Histogram.observe h 0.001;
  Obs.Histogram.observe h 0.002;
  let older = Obs.Histogram.copy h in
  Alcotest.(check int) "copy is a snapshot" 2 (Obs.Histogram.count older);
  Obs.Histogram.observe h 0.100;
  Obs.Histogram.observe h 0.200;
  let iv = Obs.Histogram.interval_sub ~newer:(Obs.Histogram.copy h) ~older in
  Alcotest.(check int) "interval counts only new samples" 2
    (Obs.Histogram.count iv);
  (* The two new observations are 0.1 and 0.2: the interval median must
     sit near them, far above the older millisecond samples. *)
  (match Obs.Histogram.percentile_opt iv 0.99 with
  | Some p -> Alcotest.(check bool) "interval p99 reflects new samples" true
                (p > 0.05)
  | None -> Alcotest.fail "interval histogram empty");
  let empty_iv =
    Obs.Histogram.interval_sub ~newer:(Obs.Histogram.copy h)
      ~older:(Obs.Histogram.copy h)
  in
  Alcotest.(check int) "idle interval is empty" 0
    (Obs.Histogram.count empty_iv)

(* ----- telemetry sampler ------------------------------------------------ *)

let test_sampler_series () =
  let cname = fresh "t.tele.work" in
  let gname = fresh "t.tele.level" in
  let c = Obs.Counter.make cname in
  let g = Obs.Counter.Gauge.make gname in
  let s = Obs.Telemetry.create () in
  Obs.Counter.add c 5;
  Obs.Counter.Gauge.set g 2.5;
  Obs.Telemetry.sample_now s;
  Obs.Counter.add c 3;
  Obs.Telemetry.sample_now s;
  Obs.Telemetry.sample_now s;
  let series name = Obs.Series.values (Obs.Series.make ("counter." ^ name)) in
  let tail2 a =
    let n = Array.length a in
    if n < 2 then [||] else Array.sub a (n - 2) 2
  in
  (* First tick swallows the pre-existing total as its delta; the next
     two see +3 and +0. *)
  Alcotest.(check bool) "counter deltas per tick" true
    (tail2 (series cname) = [| 3.0; 0.0 |]);
  let gs = Obs.Series.values (Obs.Series.make ("gauge." ^ gname)) in
  Alcotest.(check bool) "gauge sampled" true
    (Array.length gs >= 3 && gs.(Array.length gs - 1) = 2.5);
  Alcotest.(check bool) "sampler cost published" true
    (List.mem_assoc "obs.telemetry.ticks" (Obs.Counter.Gauge.values ()));
  Alcotest.(check bool) "overhead is a sane percentage" true
    (let p = Obs.Telemetry.overhead_pct s in
     p >= 0.0 && p <= 100.0)

let test_sampler_histogram_interval () =
  let hname = fresh "t.tele.lat" in
  let h = Obs.Histogram.make hname in
  let s = Obs.Telemetry.create () in
  Obs.Histogram.observe h 0.010;
  Obs.Histogram.observe h 0.010;
  Obs.Telemetry.sample_now s;
  Obs.Telemetry.sample_now s;
  let p50 = Obs.Series.values (Obs.Series.make ("hist." ^ hname ^ ".p50_s")) in
  let n = Array.length p50 in
  Alcotest.(check bool) "active tick has a finite p50" true
    (n >= 2 && Float.is_finite p50.(n - 2));
  Alcotest.(check bool) "idle tick records NaN gap" true
    (n >= 1 && Float.is_nan p50.(n - 1))

(* ----- prometheus text -------------------------------------------------- *)

let test_promtext_render_valid () =
  let c = Obs.Counter.make (fresh "t.prom.hits") in
  let g = Obs.Counter.Gauge.make (fresh "t.prom-gauge") in
  Obs.Counter.add c 7;
  Obs.Counter.Gauge.set g Float.nan;
  let page = Obs.Promtext.render () in
  (match Obs.Promtext.validate page with
  | Ok () -> ()
  | Error m -> Alcotest.failf "rendered page fails validation: %s\n%s" m page);
  Alcotest.(check bool) "counter rendered as _total" true
    (let needle = Obs.Promtext.metric_name (Obs.Counter.name c) ^ "_total 7" in
     let nh = String.length page and nn = String.length needle in
     let rec go i =
       i + nn <= nh && (String.sub page i nn = needle || go (i + 1))
     in
     go 0);
  Alcotest.(check string) "names sanitized and prefixed" "fbb_t_prom_gauge_1"
    (Obs.Promtext.metric_name "t.prom-gauge_1")

let test_promtext_validator_rejects () =
  let bad page = Obs.Promtext.validate page = Ok () in
  Alcotest.(check bool) "valid minimal page" true
    (Obs.Promtext.validate "# HELP x y\n# TYPE x counter\nx 1\n" = Ok ());
  Alcotest.(check bool) "bad metric name" false (bad "9name 1\n");
  Alcotest.(check bool) "bad TYPE" false (bad "# TYPE x widget\nx 1\n");
  Alcotest.(check bool) "bad value" false (bad "x one\n");
  Alcotest.(check bool) "unterminated label block" false (bad "x{a=\"b\" 1\n");
  Alcotest.(check bool) "labels ok" true
    (bad "x{quantile=\"0.5\",le=\"+Inf\"} NaN 1700000000\n")

(* ----- exemplars -------------------------------------------------------- *)

let test_exemplar_basic () =
  let h = Obs.Histogram.create (fresh "t.exem") in
  Obs.Histogram.observe ~exemplar:"t-early" h 0.010;
  Alcotest.(check bool) "disabled: no exemplar stored" true
    (Obs.Histogram.exemplar_for h 0.010 = None);
  Obs.Histogram.enable_exemplars h;
  Obs.Histogram.enable_exemplars h;  (* idempotent *)
  Obs.Histogram.observe ~exemplar:"t-1" h 0.010;
  (match Obs.Histogram.exemplar_for h 0.010 with
  | Some e ->
    Alcotest.(check string) "trace id" "t-1" e.Obs.Histogram.ex_trace;
    Alcotest.(check (float 1e-12)) "value" 0.010 e.Obs.Histogram.ex_value
  | None -> Alcotest.fail "exemplar not recorded");
  (* Untraced and empty-trace observations never clobber an exemplar. *)
  Obs.Histogram.observe h 0.010;
  Obs.Histogram.observe ~exemplar:"" h 0.010;
  (match Obs.Histogram.exemplar_for h 0.010 with
  | Some e -> Alcotest.(check string) "survives untraced" "t-1" e.ex_trace
  | None -> Alcotest.fail "exemplar lost");
  (* Last traced writer wins; other buckets are independent. *)
  Obs.Histogram.observe ~exemplar:"t-2" h 0.010;
  Obs.Histogram.observe ~exemplar:"t-big" h 10.0;
  (match Obs.Histogram.exemplar_for h 0.010 with
  | Some e -> Alcotest.(check string) "last writer wins" "t-2" e.ex_trace
  | None -> Alcotest.fail "exemplar lost");
  (match Obs.Histogram.exemplar_for h 10.0 with
  | Some e -> Alcotest.(check string) "per-bucket slot" "t-big" e.ex_trace
  | None -> Alcotest.fail "exemplar lost");
  Obs.Histogram.reset h;
  Alcotest.(check bool) "reset clears exemplars" true
    (Obs.Histogram.exemplar_for h 0.010 = None)

let test_exemplar_concurrent_writers () =
  (* Multi-domain writers hammer one bucket, each with its own (trace,
     value) pairing. Last-writer-wins is fine; a torn exemplar — the
     trace id of one writer paired with another's value — is not. *)
  let h = Obs.Histogram.create (fresh "t.exem.race") in
  Obs.Histogram.enable_exemplars h;
  let writers = 4 and rounds = 2_000 in
  (* All values land in the same bucket (within one 6.25% grid step). *)
  let value_of w = 1.0 +. (0.001 *. float_of_int w) in
  let trace_of w = Printf.sprintf "writer-%d" w in
  let torn = Atomic.make 0 in
  let stop = Atomic.make false in
  let reader =
    Domain.spawn (fun () ->
        while not (Atomic.get stop) do
          (match Obs.Histogram.exemplar_for h 1.0 with
          | None -> ()
          | Some e ->
            let consistent =
              List.exists
                (fun w ->
                  e.Obs.Histogram.ex_trace = trace_of w
                  && Float.abs (e.ex_value -. value_of w) < 1e-12)
                (List.init writers Fun.id)
            in
            if not consistent then Atomic.incr torn);
          Domain.cpu_relax ()
        done)
  in
  let doms =
    List.init writers (fun w ->
        Domain.spawn (fun () ->
            for _ = 1 to rounds do
              Obs.Histogram.observe ~exemplar:(trace_of w) h (value_of w)
            done))
  in
  List.iter Domain.join doms;
  Atomic.set stop true;
  Domain.join reader;
  Alcotest.(check int) "no torn exemplars" 0 (Atomic.get torn);
  Alcotest.(check int) "no lost observations" (writers * rounds)
    (Obs.Histogram.count h);
  match Obs.Histogram.exemplar_for h 1.0 with
  | Some _ -> ()
  | None -> Alcotest.fail "final exemplar missing"

let test_promtext_exemplar_render () =
  let h = Obs.Histogram.make (fresh "t.prom.exem") in
  Obs.Histogram.enable_exemplars h;
  Obs.Histogram.observe ~exemplar:"req:abc" h 0.010;
  Obs.Histogram.observe h 0.500;
  let page = Obs.Promtext.render () in
  (match Obs.Promtext.validate page with
  | Ok () -> ()
  | Error m -> Alcotest.failf "exemplar page fails validation: %s\n%s" m page);
  let contains needle =
    let nh = String.length page and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub page i nn = needle || go (i + 1)) in
    go 0
  in
  let n = Obs.Promtext.metric_name (Obs.Histogram.name h) ^ "_seconds" in
  Alcotest.(check bool) "bucket exposition" true (contains (n ^ "_bucket{le=\""));
  Alcotest.(check bool) "+Inf bucket closes the grid" true
    (contains (n ^ "_bucket{le=\"+Inf\"} 2"));
  Alcotest.(check bool) "exemplar rendered" true
    (contains "# {trace_id=\"req:abc\"}");
  Obs.Histogram.reset h

(* ----- promtext adversarial pages --------------------------------------- *)

let test_promtext_duplicate_blocks () =
  let ok page = Obs.Promtext.validate page = Ok () in
  Alcotest.(check bool) "duplicate HELP rejected" false
    (ok "# HELP x a\n# TYPE x counter\nx 1\n# HELP x b\nx 2\n");
  Alcotest.(check bool) "duplicate TYPE rejected" false
    (ok "# TYPE x counter\nx 1\n# TYPE x gauge\nx 2\n");
  Alcotest.(check bool) "distinct names fine" true
    (ok "# HELP x a\n# TYPE x counter\nx 1\n# HELP y b\n# TYPE y gauge\ny 2\n");
  (* The duplicate error names the offending line. *)
  (match Obs.Promtext.validate "# HELP x a\n# HELP x b\n" with
  | Error m ->
    Alcotest.(check bool) "error carries line number" true
      (String.length m >= 7 && String.sub m 0 7 = "line 2:")
  | Ok () -> Alcotest.fail "duplicate HELP accepted")

let test_promtext_exemplar_validation () =
  let ok page = Obs.Promtext.validate page = Ok () in
  Alcotest.(check bool) "exemplar on _bucket ok" true
    (ok "x_bucket{le=\"0.1\"} 3 # {trace_id=\"t1\"} 0.05 1700000000.5\n");
  Alcotest.(check bool) "exemplar on _total ok" true
    (ok "x_total 3 # {trace_id=\"t1\"} 1\n");
  Alcotest.(check bool) "exemplar on gauge sample rejected" false
    (ok "x 3 # {trace_id=\"t1\"} 1\n");
  Alcotest.(check bool) "exemplar needs labels" false (ok "x_total 3 # 1\n");
  Alcotest.(check bool) "exemplar needs a value" false
    (ok "x_total 3 # {trace_id=\"t1\"}\n");
  Alcotest.(check bool) "bad exemplar value rejected" false
    (ok "x_total 3 # {trace_id=\"t1\"} zap\n");
  Alcotest.(check bool) "unterminated exemplar labels rejected" false
    (ok "x_total 3 # {trace_id=\"t1\" 1\n");
  Alcotest.(check bool) "trailing garbage rejected" false
    (ok "x_total 3 # {trace_id=\"t1\"} 1 2 3\n")

(* ----- flight recorder --------------------------------------------------- *)

let flight_finish ?(outcome = Obs.Flight.Solved "ilp") ?(exhausted = false)
    ?(latency_s = 0.010) ?(stages = []) ?(counters = []) trace =
  Obs.Flight.finish ~trace ~req_id:trace ~outcome ~exhausted
    ~queue_wait_s:0.001 ~latency_s ~stages ~counters

let test_flight_record_roundtrip () =
  Obs.Flight.clear ();
  let trace = "req:rt-1" in
  Obs.Flight.begin_request ~trace;
  Obs.Sink.with_installed (Obs.Flight.sink ()) (fun () ->
      Obs.Context.with_ (Obs.Context.make ~trace ()) (fun () ->
          Obs.Span.with_ ~name:"serve.request" (fun () ->
              Obs.Span.with_ ~name:"cascade.ilp" (fun () -> ());
              Obs.Span.with_ ~name:"cascade.bb" (fun () -> ()))));
  flight_finish trace
    ~stages:
      [
        {
          Obs.Flight.st_stage = "ilp";
          st_status = "accepted";
          st_work = 120;
          st_leakage_nw = Some 42.5;
        };
      ]
    ~counters:[ ("sta.nodes_repropagated", 17) ];
  (match Obs.Flight.find trace with
  | None -> Alcotest.fail "record not stored"
  | Some r ->
    Alcotest.(check string) "request id" trace r.Obs.Flight.req_id;
    (match r.Obs.Flight.spans with
    | [ root ] ->
      Alcotest.(check string) "root span" "serve.request"
        root.Obs.Flight.sp_name;
      Alcotest.(check int) "children in begin order" 2
        (List.length root.Obs.Flight.sp_children);
      Alcotest.(check (list string)) "child names"
        [ "cascade.ilp"; "cascade.bb" ]
        (List.map (fun s -> s.Obs.Flight.sp_name) root.Obs.Flight.sp_children)
    | spans -> Alcotest.failf "expected one root span, got %d" (List.length spans));
    let j = Obs.Flight.to_json r in
    Alcotest.(check (option string)) "record schema"
      (Some "fbb-flight-record-1")
      (Fbb_util.Json.member_str "schema" j);
    Alcotest.(check (option (float 0.0))) "counter delta serialized" (Some 17.0)
      (Option.bind
         (Fbb_util.Json.member "counters" j)
         (Fbb_util.Json.member_num "sta.nodes_repropagated")));
  (* Untracked traces cost nothing and record nothing. *)
  Alcotest.(check bool) "unknown trace is None" true
    (Obs.Flight.find "req:never" = None);
  let idx = Obs.Flight.index_json () in
  Alcotest.(check (option string)) "index schema" (Some "fbb-flight-1")
    (Fbb_util.Json.member_str "schema" idx);
  Obs.Flight.clear ()

let test_flight_eviction_retention () =
  (* Under churn past the capacity, the slowest-K, every non-Solved and
     every exhausted record must survive; fillers go FIFO. *)
  Obs.Flight.clear ();
  Obs.Flight.configure ~capacity:8 ~keep_slowest:2 ();
  Fun.protect
    ~finally:(fun () ->
      Obs.Flight.configure ~capacity:512 ~keep_slowest:16 ();
      Obs.Flight.clear ())
  @@ fun () ->
  flight_finish "req:slow-1" ~latency_s:9.0;
  flight_finish "req:slow-2" ~latency_s:8.0;
  flight_finish "req:shed-1" ~outcome:(Obs.Flight.Shed "overload")
    ~latency_s:0.0;
  flight_finish "req:err-1" ~outcome:(Obs.Flight.Errored "boom")
    ~latency_s:0.002;
  flight_finish "req:exh-1" ~exhausted:true ~latency_s:0.003;
  for i = 1 to 40 do
    flight_finish (Printf.sprintf "req:fill-%d" i) ~latency_s:0.001
  done;
  Alcotest.(check int) "ring stays bounded" 8 (Obs.Flight.size ());
  List.iter
    (fun tr ->
      Alcotest.(check bool) (tr ^ " retained") true (Obs.Flight.find tr <> None))
    [ "req:slow-1"; "req:slow-2"; "req:shed-1"; "req:err-1"; "req:exh-1" ];
  (* FIFO among the unprotected fillers: the early ones are gone, the
     ring's remainder is the newest fillers. *)
  Alcotest.(check bool) "old filler evicted" true
    (Obs.Flight.find "req:fill-1" = None);
  Alcotest.(check bool) "newest filler retained" true
    (Obs.Flight.find "req:fill-40" <> None);
  (* seq stays monotone in the index (newest first). *)
  let seqs = List.map (fun r -> r.Obs.Flight.seq) (Obs.Flight.index ()) in
  Alcotest.(check bool) "index newest-first by seq" true
    (List.sort (fun a b -> compare b a) seqs = seqs)

let test_flight_protection_yields_at_cap () =
  (* A pathological all-protected ring still respects the bound. *)
  Obs.Flight.clear ();
  Obs.Flight.configure ~capacity:4 ~keep_slowest:2 ();
  Fun.protect
    ~finally:(fun () ->
      Obs.Flight.configure ~capacity:512 ~keep_slowest:16 ();
      Obs.Flight.clear ())
  @@ fun () ->
  for i = 1 to 20 do
    flight_finish
      (Printf.sprintf "req:shed-%d" i)
      ~outcome:(Obs.Flight.Shed "overload") ~latency_s:0.0
  done;
  Alcotest.(check int) "bounded even when all protected" 4
    (Obs.Flight.size ());
  Alcotest.(check bool) "newest survives" true
    (Obs.Flight.find "req:shed-20" <> None)

(* ----- slo burn rates ---------------------------------------------------- *)

let test_slo_latency_burn () =
  let sname = fresh "t.slo.p99" in
  let s = Obs.Series.make sname in
  let now = 10_000.0 in
  (* 10 ticks: the 4 oldest non-idle ones breach the threshold, the 4
     newest are healthy, 2 are idle (NaN). *)
  for i = 1 to 10 do
    let v =
      if i <= 4 then 0.010 else if i <= 8 then 1.0 else Float.nan
    in
    Obs.Series.push s ~ts:(now -. float_of_int i) v
  done;
  let o =
    {
      Obs.Slo.slo_name = fresh "latency";
      kind = Obs.Slo.Latency_p { series = sname; threshold_s = 0.5 };
      target = 0.9;
      windows = { Obs.Slo.fast_s = 60.0; slow_s = 3600.0 };
      burn_limit = 2.0;
    }
  in
  let st = Obs.Slo.evaluate ~now o in
  (* bad_frac = 4/8 (NaN ticks excluded); burn = 0.5 / 0.1 = 5. *)
  Alcotest.(check (float 1e-9)) "fast burn" 5.0 st.Obs.Slo.burn_fast;
  Alcotest.(check (float 1e-9)) "slow burn" 5.0 st.Obs.Slo.burn_slow;
  Alcotest.(check bool) "breached when both windows burn" false st.Obs.Slo.ok;
  (* A short fast window holding only good ticks recovers [ok] (slow
     window alone cannot breach). *)
  let o2 =
    { o with Obs.Slo.windows = { Obs.Slo.fast_s = 3.5; slow_s = 3600.0 } }
  in
  let st2 = Obs.Slo.evaluate ~now o2 in
  Alcotest.(check (float 1e-9)) "clean fast window" 0.0 st2.Obs.Slo.burn_fast;
  Alcotest.(check bool) "multi-window veto" true st2.Obs.Slo.ok

let test_slo_ratio_and_gauges () =
  let bad_name = fresh "t.slo.bad" and total_name = fresh "t.slo.total" in
  let bad = Obs.Series.make bad_name and total = Obs.Series.make total_name in
  let now = 20_000.0 in
  for i = 1 to 10 do
    let ts = now -. float_of_int i in
    Obs.Series.push bad ~ts (if i <= 2 then 1.0 else 0.0);
    Obs.Series.push total ~ts 4.0
  done;
  let oname = fresh "shed" in
  Obs.Slo.register
    {
      Obs.Slo.slo_name = oname;
      kind = Obs.Slo.Ratio { bad = [ bad_name ]; total = total_name };
      target = 0.9;
      windows = { Obs.Slo.fast_s = 60.0; slow_s = 3600.0 };
      burn_limit = 2.0;
    };
  Fun.protect ~finally:Obs.Slo.clear @@ fun () ->
  let statuses = Obs.Slo.evaluate_all ~now () in
  (match List.find_opt (fun st -> st.Obs.Slo.objective.slo_name = oname) statuses with
  | None -> Alcotest.fail "objective not evaluated"
  | Some st ->
    (* bad_frac = 2/40; burn = 0.05 / 0.1 = 0.5. *)
    Alcotest.(check (float 1e-9)) "ratio burn" 0.5 st.Obs.Slo.burn_fast;
    Alcotest.(check bool) "inside budget" true st.Obs.Slo.ok);
  (* evaluate_all published the gauges. *)
  let gauges = Obs.Counter.Gauge.values () in
  Alcotest.(check bool) "burn gauge published" true
    (List.mem_assoc ("slo." ^ oname ^ ".burn_fast") gauges);
  Alcotest.(check (option (float 0.0))) "ok gauge is 1" (Some 1.0)
    (List.assoc_opt ("slo." ^ oname ^ ".ok") gauges);
  (* An empty ring burns nothing. *)
  let empty =
    Obs.Slo.evaluate ~now
      {
        Obs.Slo.slo_name = fresh "empty";
        kind =
          Obs.Slo.Ratio { bad = [ fresh "t.slo.none" ]; total = fresh "t.slo.no" };
        target = 0.99;
        windows = Obs.Slo.default_windows;
        burn_limit = 2.0;
      }
  in
  Alcotest.(check (float 1e-12)) "empty window burns 0" 0.0
    empty.Obs.Slo.burn_fast;
  Alcotest.(check bool) "empty window is ok" true empty.Obs.Slo.ok

let test_slo_register_validation () =
  let o =
    {
      Obs.Slo.slo_name = "bad";
      kind = Obs.Slo.Latency_p { series = "x"; threshold_s = 1.0 };
      target = 1.0;
      windows = Obs.Slo.default_windows;
      burn_limit = 2.0;
    }
  in
  Alcotest.check_raises "target 1.0 rejected"
    (Invalid_argument "Slo.register: target must be in [0, 1)") (fun () ->
      Obs.Slo.register o);
  Alcotest.check_raises "non-positive burn limit rejected"
    (Invalid_argument "Slo.register: burn_limit must be > 0") (fun () ->
      Obs.Slo.register { o with Obs.Slo.target = 0.9; burn_limit = 0.0 })

(* ----- http endpoint ---------------------------------------------------- *)

let test_metrics_endpoint () =
  let c = Obs.Counter.make (fresh "t.http.hits") in
  Obs.Counter.add c 3;
  let s = Obs.Telemetry.create () in
  Obs.Telemetry.sample_now s;
  match Obs.Telemetry.serve ~port:0 () with
  | Error m -> Alcotest.failf "serve: %s" m
  | Ok srv ->
    Fun.protect ~finally:(fun () -> Obs.Telemetry.shutdown srv) @@ fun () ->
    let base = Printf.sprintf "http://127.0.0.1:%d" (Obs.Telemetry.port srv) in
    (match Obs.Telemetry.http_get (base ^ "/metrics") with
    | Error m -> Alcotest.failf "GET /metrics: %s" m
    | Ok body -> (
      match Obs.Promtext.validate body with
      | Ok () -> ()
      | Error m -> Alcotest.failf "/metrics invalid: %s" m));
    (match Obs.Telemetry.http_get (base ^ "/snapshot.json") with
    | Error m -> Alcotest.failf "GET /snapshot.json: %s" m
    | Ok body -> (
      match Fbb_util.Json.parse_opt body with
      | None -> Alcotest.fail "/snapshot.json is not JSON"
      | Some j ->
        Alcotest.(check (option string)) "schema" (Some "fbb-telemetry-1")
          (Fbb_util.Json.member_str "schema" j)));
    (match Obs.Telemetry.http_get (base ^ "/healthz") with
    | Ok body -> Alcotest.(check string) "healthz" "ok\n" body
    | Error m -> Alcotest.failf "GET /healthz: %s" m);
    Alcotest.(check bool) "unknown path is a 404" true
      (match Obs.Telemetry.http_get (base ^ "/nope") with
      | Error _ -> true
      | Ok _ -> false);
    (* Scrapes count themselves. *)
    Alcotest.(check bool) "scrape counter ticked" true
      (Obs.Counter.read (Obs.Counter.make "obs.telemetry.scrapes") >= 3)

(* ----- sink swap under load --------------------------------------------- *)

let test_sink_swap_under_load () =
  (* Property: a base sink installed for the whole run observes a
     balanced per-domain span stream even while a second domain
     concurrently tees a scratch sink in and out (the live-attach
     pattern a telemetry endpoint needs). Balance = every Span_end
     matches the innermost open Span_begin of the same domain. *)
  let base, events = recording () in
  let stop = Atomic.make false in
  Obs.Sink.with_installed base (fun () ->
      let swapper =
        Domain.spawn (fun () ->
            let scratch = { Obs.Sink.emit = ignore; flush = ignore } in
            while not (Atomic.get stop) do
              (match Obs.Sink.installed () with
              | Some cur -> Obs.Sink.install (Obs.Sink.tee cur scratch)
              | None -> ());
              Domain.cpu_relax ();
              Obs.Sink.install base
            done)
      in
      Fbb_par.Pool.set_jobs 4;
      for _ = 1 to 50 do
        Fbb_par.Pool.parallel_for ~chunk:1 ~n:8 (fun i ->
            Obs.Span.with_ ~name:"swap.task" (fun () ->
                Obs.Span.with_ ~name:"swap.leaf" (fun () ->
                    ignore (Sys.opaque_identity i))))
      done;
      Atomic.set stop true;
      Domain.join swapper;
      Fbb_par.Pool.set_jobs 1);
  let stacks = Hashtbl.create 8 in
  let stack dom = try Hashtbl.find stacks dom with Not_found -> [] in
  let balanced =
    List.for_all
      (function
        | Obs.Event.Span_begin { name; dom; _ } ->
          Hashtbl.replace stacks dom (name :: stack dom);
          true
        | Obs.Event.Span_end { name; dom; _ } -> (
          match stack dom with
          | top :: rest when top = name ->
            Hashtbl.replace stacks dom rest;
            true
          | _ -> false)
        | _ -> true)
      (events ())
  in
  Alcotest.(check bool) "per-domain span streams stay balanced" true balanced;
  Alcotest.(check bool) "all stacks drained" true
    (Hashtbl.fold (fun _ s acc -> acc && s = []) stacks true);
  let begins =
    List.length
      (List.filter
         (function
           | Obs.Event.Span_begin { name = "swap.task"; _ } -> true
           | _ -> false)
         (events ()))
  in
  Alcotest.(check int) "base sink saw every task span" 400 begins

let suite =
  [
    ("span nesting", `Quick, test_span_nesting);
    ("span exception safety", `Quick, test_span_exception_safe);
    ("span duration aggregation", `Quick, test_span_durations_aggregate);
    ("counter totals without sink", `Quick, test_counter_totals_without_sink);
    ("counter registration idempotent", `Quick,
     test_counter_registration_idempotent);
    ("counter aggregation", `Quick, test_counter_aggregation);
    ("counter delta attribution", `Quick, test_counter_delta_attribution);
    ("gauge", `Quick, test_gauge);
    ("sink install/restore", `Quick, test_sink_restore);
    ("sink suspended", `Quick, test_suspended);
    ("null sink is a no-op", `Quick, test_null_sink_noop);
    ("jsonl round-trip", `Quick, test_jsonl_roundtrip);
    ("event json escaping", `Quick, test_event_json_escaping);
    ("histogram edge buckets", `Quick, test_histogram_edges);
    ("histogram percentile accuracy", `Quick,
     test_histogram_percentile_accuracy);
    ("histogram merge = combined", `Quick,
     test_histogram_merge_matches_combined);
    ("span records histogram", `Quick, test_span_records_histogram);
    ("gc delta monotone", `Quick, test_gc_delta_monotone);
    ("span emits gc sample", `Quick, test_span_emits_gc_sample);
    ("gc sampling toggle", `Quick, test_gc_sampling_toggle);
    ("jsonl valid when raising", `Quick, test_jsonl_valid_when_raising);
    ("context scoping", `Quick, test_context_scoping);
    ("context parent span", `Quick, test_context_parent_span);
    ("spans carry trace id", `Quick, test_spans_carry_trace);
    ("pool propagates context", `Quick, test_pool_propagates_context);
    ("series ring buffer", `Quick, test_series_ring);
    ("series registry", `Quick, test_series_registry);
    ("histogram percentile_opt", `Quick, test_histogram_percentile_opt);
    ("histogram interval_sub", `Quick, test_histogram_interval_sub);
    ("sampler builds series", `Quick, test_sampler_series);
    ("sampler histogram intervals", `Quick, test_sampler_histogram_interval);
    ("promtext render validates", `Quick, test_promtext_render_valid);
    ("promtext validator rejects", `Quick, test_promtext_validator_rejects);
    ("exemplar basic", `Quick, test_exemplar_basic);
    ("exemplar concurrent writers", `Quick, test_exemplar_concurrent_writers);
    ("promtext exemplar render", `Quick, test_promtext_exemplar_render);
    ("promtext duplicate blocks", `Quick, test_promtext_duplicate_blocks);
    ("promtext exemplar validation", `Quick,
     test_promtext_exemplar_validation);
    ("flight record round-trip", `Quick, test_flight_record_roundtrip);
    ("flight eviction retention", `Quick, test_flight_eviction_retention);
    ("flight bounded when all protected", `Quick,
     test_flight_protection_yields_at_cap);
    ("slo latency burn", `Quick, test_slo_latency_burn);
    ("slo ratio and gauges", `Quick, test_slo_ratio_and_gauges);
    ("slo register validation", `Quick, test_slo_register_validation);
    ("metrics endpoint", `Quick, test_metrics_endpoint);
    ("sink swap under load", `Quick, test_sink_swap_under_load);
  ]
  @ List.map
      (QCheck_alcotest.to_alcotest ~long:false)
      [ qcheck_histogram_merge_associative ]
