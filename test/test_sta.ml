(* Tests for Fbb_sta: arrival/required/slack propagation, critical path,
   per-cell longest-path extraction. *)

module N = Fbb_netlist.Netlist
module B = N.Builder
module CL = Fbb_tech.Cell_library
module T = Fbb_sta.Timing
module P = Fbb_sta.Paths

let lib = CL.default

(* chain: a -> inv1 -> inv2 -> out; plus a short branch a -> inv3 -> out2 *)
let chain () =
  let b = B.create lib in
  let a = B.input b "a" in
  let i1 = B.gate b ~name:"i1" CL.Inv [ a ] in
  let i2 = B.gate b ~name:"i2" CL.Inv [ i1 ] in
  let i3 = B.gate b ~name:"i3" CL.Inv [ a ] in
  ignore (B.output b "o1" i2);
  ignore (B.output b "o2" i3);
  B.freeze b

let inv_delay nl g t = T.gate_delay t (N.find nl g)

let test_arrival_chain () =
  let nl = chain () in
  let t = T.analyze nl in
  let d1 = inv_delay nl "i1" t and d2 = inv_delay nl "i2" t in
  Alcotest.(check (float 1e-9)) "arrival i2" (d1 +. d2)
    (T.arrival t (N.find nl "i2"));
  Alcotest.(check (float 1e-9)) "dcrit = longest" (d1 +. d2) (T.dcrit t);
  Alcotest.(check (float 1e-9)) "output arrival = driver" (d1 +. d2)
    (T.arrival t (N.find nl "o1"))

let test_slack () =
  let nl = chain () in
  let t = T.analyze nl in
  Alcotest.(check (float 1e-9)) "critical slack 0" 0.0
    (T.slack t (N.find nl "i2"));
  Alcotest.(check bool) "branch has slack" true
    (T.slack t (N.find nl "i3") > 1.0)

let test_derate_scales () =
  let nl = chain () in
  let t0 = T.analyze nl in
  let t1 = T.analyze ~derate:(fun _ -> 1.1) nl in
  Alcotest.(check (float 1e-6)) "10% slower" (T.dcrit t0 *. 1.1) (T.dcrit t1)

let test_bias_speeds_up () =
  let nl = chain () in
  let t0 = T.analyze nl in
  let t1 = T.analyze ~bias:(fun _ -> 0.5) nl in
  let expect =
    T.dcrit t0 *. Fbb_tech.Device.delay_factor Fbb_tech.Device.default ~vbs:0.5
  in
  Alcotest.(check (float 1e-6)) "21% faster" expect (T.dcrit t1)

let test_critical_path_of_chain () =
  let nl = chain () in
  let t = T.analyze nl in
  let names = List.map (N.name nl) (T.critical_path t) in
  Alcotest.(check (list string)) "path" [ "i1"; "i2" ] names

let test_dff_launch_capture () =
  (* in -> inv -> dff -> inv -> out: two timing paths split by the dff *)
  let b = B.create lib in
  let a = B.input b "a" in
  let i1 = B.gate b ~name:"i1" CL.Inv [ a ] in
  let q = B.gate b ~name:"q" CL.Dff [ i1 ] in
  let i2 = B.gate b ~name:"i2" CL.Inv [ q ] in
  ignore (B.output b "o" i2);
  let nl = B.freeze b in
  let t = T.analyze nl in
  let dq = T.gate_delay t (N.find nl "q") in
  let d2 = T.gate_delay t (N.find nl "i2") in
  Alcotest.(check (float 1e-9)) "q launches at clk-to-q" dq
    (T.arrival t (N.find nl "q"));
  Alcotest.(check bool) "endpoint flags" true (T.is_endpoint t (N.find nl "q"));
  (* dcrit is the max of (launch + i2) and (i1 capture) *)
  let d1 = T.gate_delay t (N.find nl "i1") in
  Alcotest.(check (float 1e-9)) "dcrit" (Float.max (dq +. d2) d1) (T.dcrit t)

let test_paths_cover_all_gates () =
  let nl = Fbb_netlist.Generators.alu ~bits:4 () in
  let t = T.analyze nl in
  let paths = P.through_cell t in
  let on_path = Hashtbl.create 64 in
  Array.iter
    (fun p -> Array.iter (fun g -> Hashtbl.replace on_path g ()) p.P.gates)
    paths;
  Array.iter
    (fun g ->
      Alcotest.(check bool)
        (Printf.sprintf "gate %s covered" (N.name nl g))
        true (Hashtbl.mem on_path g))
    (N.gates nl)

let test_paths_delay_consistent () =
  let nl = Fbb_netlist.Generators.alu ~bits:4 () in
  let t = T.analyze nl in
  Array.iter
    (fun p ->
      Alcotest.(check (float 1e-6)) "delay = sum of gate delays"
        (P.delay_of t p.P.gates) p.P.delay;
      Alcotest.(check bool) "within dcrit" true
        (p.P.delay <= T.dcrit t +. 1e-6))
    (P.through_cell t)

let test_paths_unique () =
  let nl = Fbb_netlist.Generators.alu ~bits:4 () in
  let t = T.analyze nl in
  let paths = P.through_cell t in
  let seen = Hashtbl.create 64 in
  Array.iter
    (fun p ->
      Alcotest.(check bool) "no duplicates" false (Hashtbl.mem seen p.P.gates);
      Hashtbl.add seen p.P.gates ())
    paths

let test_paths_sorted () =
  let nl = Fbb_netlist.Generators.alu ~bits:4 () in
  let t = T.analyze nl in
  let paths = P.through_cell t in
  for i = 1 to Array.length paths - 1 do
    Alcotest.(check bool) "descending" true
      (paths.(i - 1).P.delay >= paths.(i).P.delay -. 1e-9)
  done

let test_violating_monotone_in_beta () =
  let nl = Fbb_netlist.Generators.alu ~bits:4 () in
  let t = T.analyze nl in
  let v5 = Array.length (P.violating t ~beta:0.05) in
  let v10 = Array.length (P.violating t ~beta:0.10) in
  let v0 = Array.length (P.violating t ~beta:0.0) in
  Alcotest.(check int) "no violations at beta=0" 0 v0;
  Alcotest.(check bool) "monotone" true (v10 >= v5)

let test_violating_definition () =
  let nl = Fbb_netlist.Generators.alu ~bits:4 () in
  let t = T.analyze nl in
  let beta = 0.07 in
  Array.iter
    (fun p ->
      Alcotest.(check bool) "degraded exceeds dcrit" true
        (p.P.delay *. (1.0 +. beta) > T.dcrit t))
    (P.violating t ~beta)

let test_paths_structurally_connected () =
  let nl = Fbb_netlist.Generators.alu ~bits:4 () in
  let t = T.analyze nl in
  Array.iter
    (fun p ->
      let gs = p.P.gates in
      for i = 1 to Array.length gs - 1 do
        let fanins = N.fanins nl gs.(i) in
        Alcotest.(check bool) "consecutive gates connected" true
          (Array.exists (( = ) gs.(i - 1)) fanins)
      done)
    (P.through_cell t)

let test_paths_pp () =
  let nl = chain () in
  let t = T.analyze nl in
  let paths = P.through_cell t in
  let s = Format.asprintf "%a" (P.pp t) paths.(0) in
  Alcotest.(check bool) "mentions a gate name" true
    (Tsupport.contains s "i1" || Tsupport.contains s "i3")

let suite =
  [
    ("arrival over a chain", `Quick, test_arrival_chain);
    ("slack", `Quick, test_slack);
    ("derate scales dcrit", `Quick, test_derate_scales);
    ("bias speeds up", `Quick, test_bias_speeds_up);
    ("critical path of chain", `Quick, test_critical_path_of_chain);
    ("dff launch and capture", `Quick, test_dff_launch_capture);
    ("paths cover all gates", `Quick, test_paths_cover_all_gates);
    ("path delays consistent", `Quick, test_paths_delay_consistent);
    ("paths unique", `Quick, test_paths_unique);
    ("paths sorted", `Quick, test_paths_sorted);
    ("violating monotone in beta", `Quick, test_violating_monotone_in_beta);
    ("violating definition", `Quick, test_violating_definition);
    ("paths structurally connected", `Quick, test_paths_structurally_connected);
    ("paths pretty printer", `Quick, test_paths_pp);
  ]
