(* Tests for Fbb_util: RNG, statistics, tables, CSV. *)

module Rng = Fbb_util.Rng
module Stats = Fbb_util.Stats

let check_float = Alcotest.(check (float 1e-9))

let test_rng_deterministic () =
  let a = Rng.create ~seed:42 and b = Rng.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:2 in
  let xs = List.init 20 (fun _ -> Rng.int a 1_000_000) in
  let ys = List.init 20 (fun _ -> Rng.int b 1_000_000) in
  Alcotest.(check bool) "different streams" false (xs = ys)

let test_rng_copy () =
  let a = Rng.create ~seed:7 in
  ignore (Rng.int a 10);
  let b = Rng.copy a in
  Alcotest.(check int) "copy continues identically" (Rng.int a 100)
    (Rng.int b 100)

let test_rng_split () =
  let a = Rng.create ~seed:7 in
  let b = Rng.split a in
  let xs = List.init 20 (fun _ -> Rng.int a 1_000_000) in
  let ys = List.init 20 (fun _ -> Rng.int b 1_000_000) in
  Alcotest.(check bool) "split decorrelates" false (xs = ys)

let test_rng_gaussian_moments () =
  let rng = Rng.create ~seed:3 in
  let xs = Array.init 20_000 (fun _ -> Rng.gaussian rng ~mu:5.0 ~sigma:2.0) in
  Alcotest.(check bool) "mean near 5" true (Float.abs (Stats.mean xs -. 5.0) < 0.1);
  Alcotest.(check bool) "stdev near 2" true (Float.abs (Stats.stdev xs -. 2.0) < 0.1)

let test_rng_shuffle_permutation () =
  let rng = Rng.create ~seed:9 in
  let a = Array.init 50 (fun i -> i) in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 (fun i -> i)) sorted

let test_stats_basic () =
  check_float "mean" 2.5 (Stats.mean [| 1.0; 2.0; 3.0; 4.0 |]);
  check_float "sum" 10.0 (Stats.sum [| 1.0; 2.0; 3.0; 4.0 |]);
  check_float "mean empty" 0.0 (Stats.mean [||]);
  check_float "stdev singleton" 0.0 (Stats.stdev [| 5.0 |]);
  check_float "stdev" (sqrt 1.25) (Stats.stdev [| 1.0; 2.0; 3.0; 4.0 |])

let test_stats_min_max () =
  let lo, hi = Stats.min_max [| 3.0; -1.0; 7.0 |] in
  check_float "min" (-1.0) lo;
  check_float "max" 7.0 hi;
  Alcotest.check_raises "empty raises"
    (Invalid_argument "Stats.min_max: empty") (fun () ->
      ignore (Stats.min_max [||]))

let test_stats_percentile () =
  let xs = [| 10.0; 20.0; 30.0; 40.0; 50.0 |] in
  check_float "p0" 10.0 (Stats.percentile xs 0.0);
  check_float "p100" 50.0 (Stats.percentile xs 100.0);
  check_float "p50" 30.0 (Stats.percentile xs 50.0);
  check_float "p25" 20.0 (Stats.percentile xs 25.0)

let test_ratio_pct () =
  check_float "half saved" 50.0 (Stats.ratio_pct 10.0 5.0);
  check_float "negative saving" (-50.0) (Stats.ratio_pct 10.0 15.0);
  (* Meaningless baselines yield nan, never inf, and the table layer
     renders them as "-". *)
  Alcotest.(check bool) "zero base is nan" true
    (Float.is_nan (Stats.ratio_pct 0.0 5.0));
  Alcotest.(check bool) "nan base is nan" true
    (Float.is_nan (Stats.ratio_pct Float.nan 5.0));
  Alcotest.(check bool) "inf value is nan" true
    (Float.is_nan (Stats.ratio_pct 10.0 Float.infinity));
  Alcotest.(check bool) "opt none on zero base" true
    (Stats.ratio_pct_opt 0.0 5.0 = None);
  Alcotest.(check (option (float 1e-9))) "opt some on sane input"
    (Some 50.0)
    (Stats.ratio_pct_opt 10.0 5.0);
  Alcotest.(check string) "cell_pct renders nan as -" "-"
    (Fbb_util.Texttab.cell_pct (Stats.ratio_pct 0.0 5.0));
  Alcotest.(check string) "cell_f renders inf as -" "-"
    (Fbb_util.Texttab.cell_f Float.infinity)

let test_texttab_render () =
  let t = Fbb_util.Texttab.create ~headers:[ "name"; "v" ] in
  Fbb_util.Texttab.add_row t [ "a"; "1" ];
  Fbb_util.Texttab.add_row t [ "bb" ];
  let s = Fbb_util.Texttab.render t in
  Alcotest.(check bool) "has header" true
    (Tsupport.contains s "name");
  Alcotest.(check bool) "pads short rows" true (Tsupport.contains s "bb");
  let lines = String.split_on_char '\n' s in
  let widths =
    List.filter (fun l -> String.length l > 0) lines |> List.map String.length
  in
  Alcotest.(check bool) "all lines same width" true
    (match widths with [] -> false | w :: rest -> List.for_all (( = ) w) rest)

let test_texttab_too_many_cells () =
  let t = Fbb_util.Texttab.create ~headers:[ "a" ] in
  Alcotest.check_raises "too many"
    (Invalid_argument "Texttab.add_row: too many cells") (fun () ->
      Fbb_util.Texttab.add_row t [ "1"; "2" ])

let test_csv_quoting () =
  let c = Fbb_util.Csv.create ~headers:[ "x"; "y" ] in
  Fbb_util.Csv.add_row c [ "a,b"; "say \"hi\"" ];
  let s = Fbb_util.Csv.render c in
  Alcotest.(check string) "quoted" "x,y\n\"a,b\",\"say \"\"hi\"\"\"\n" s

let test_csv_save () =
  let c = Fbb_util.Csv.create ~headers:[ "a" ] in
  Fbb_util.Csv.add_row c [ "1" ];
  let path = Filename.temp_file "fbb" ".csv" in
  Fbb_util.Csv.save c ~path;
  let ic = open_in path in
  let first = input_line ic in
  close_in ic;
  Sys.remove path;
  Alcotest.(check string) "header line" "a" first

let test_texttab_align () =
  let t = Fbb_util.Texttab.create ~headers:[ "x"; "y" ] in
  Fbb_util.Texttab.set_align t 1 Fbb_util.Texttab.Left;
  Fbb_util.Texttab.add_row t [ "1"; "q" ];
  Fbb_util.Texttab.add_rule t;
  Fbb_util.Texttab.add_row t [ "2"; "r" ];
  let s = Fbb_util.Texttab.render t in
  Alcotest.(check bool) "rule rendered" true
    (List.length (String.split_on_char '\n' s) >= 7)

let test_cells () =
  Alcotest.(check string) "cell_f" "1.50" (Fbb_util.Texttab.cell_f 1.5);
  Alcotest.(check string) "cell_f digits" "1.5"
    (Fbb_util.Texttab.cell_f ~digits:1 1.5);
  Alcotest.(check string) "cell_i" "42" (Fbb_util.Texttab.cell_i 42);
  Alcotest.(check string) "cell_pct" "12.35"
    (Fbb_util.Texttab.cell_pct 12.345)

let test_csv_parse_tricky () =
  let c = Fbb_util.Csv.create ~headers:[ "x"; "y" ] in
  Fbb_util.Csv.add_row c [ "a,b"; "line1\nline2" ];
  Fbb_util.Csv.add_row c [ "say \"hi\""; "" ];
  Alcotest.(check (list (list string)))
    "parse inverts render"
    [ [ "x"; "y" ]; [ "a,b"; "line1\nline2" ]; [ "say \"hi\""; "" ] ]
    (Fbb_util.Csv.parse (Fbb_util.Csv.render c));
  Alcotest.(check (list (list string))) "crlf records"
    [ [ "a"; "b" ]; [ "c" ] ]
    (Fbb_util.Csv.parse "a,b\r\nc\r\n");
  Alcotest.(check (list (list string))) "no trailing newline"
    [ [ "a" ]; [ "b" ] ]
    (Fbb_util.Csv.parse "a\nb");
  Alcotest.check_raises "unterminated quote"
    (Fbb_util.Csv.Parse_error (1, "unterminated quoted field")) (fun () ->
      ignore (Fbb_util.Csv.parse "\"abc"));
  Alcotest.check_raises "stray data after quote"
    (Fbb_util.Csv.Parse_error (1, "data after closing quote")) (fun () ->
      ignore (Fbb_util.Csv.parse "\"a\"b,c"))

(* ----- Budget ----------------------------------------------------------- *)

module Budget = Fbb_util.Budget

let test_budget_unlimited () =
  Alcotest.(check bool) "is_unlimited" true
    (Budget.is_unlimited Budget.unlimited);
  for _ = 1 to 100 do
    Alcotest.(check bool) "tick ok" true (Budget.tick Budget.unlimited)
  done;
  Alcotest.(check bool) "never exhausted" false
    (Budget.exhausted Budget.unlimited);
  Alcotest.(check bool) "no reason" true (Budget.reason Budget.unlimited = None);
  (* The shared token never accumulates work: ticks are no-ops. *)
  Alcotest.(check int) "work untouched" 0 (Budget.work_used Budget.unlimited);
  Alcotest.(check bool) "sub of unlimited is unlimited" true
    (Budget.is_unlimited (Budget.sub Budget.unlimited));
  (* A fresh limitless token does accumulate (for reporting). *)
  let fresh = Budget.create () in
  Alcotest.(check bool) "fresh token is not the shared one" false
    (Budget.is_unlimited fresh);
  ignore (Budget.tick ~cost:7 fresh);
  Alcotest.(check int) "fresh token counts work" 7 (Budget.work_used fresh)

let test_budget_work_limit () =
  let b = Budget.create ~work:10 () in
  for i = 1 to 10 do
    Alcotest.(check bool) (Printf.sprintf "tick %d ok" i) true (Budget.tick b)
  done;
  Alcotest.(check int) "work_used" 10 (Budget.work_used b);
  Alcotest.(check (option int)) "remaining 0" (Some 0) (Budget.remaining_work b);
  Alcotest.(check bool) "at the limit is not over it" false (Budget.exhausted b);
  Alcotest.(check bool) "crossing tick fails" false (Budget.tick b);
  (* Sticky: every later tick and query reports the same exhaustion. *)
  Alcotest.(check bool) "sticky tick" false (Budget.tick b);
  Alcotest.(check bool) "sticky ok" false (Budget.ok b);
  Alcotest.(check bool) "exhausted" true (Budget.exhausted b);
  Alcotest.(check bool) "reason is work" true (Budget.reason b = Some Budget.Work)

let test_budget_zero_work () =
  let b = Budget.create ~work:0 () in
  Alcotest.(check bool) "zero-cost probe passes" true (Budget.ok b);
  Alcotest.(check bool) "first real tick trips" false (Budget.tick b);
  Alcotest.(check bool) "exhausted" true (Budget.exhausted b)

let test_budget_deadline () =
  let b = Budget.create ~deadline_s:0.0 () in
  while Budget.elapsed_s b < 0.002 do
    ()
  done;
  Alcotest.(check bool) "past-deadline tick fails" false (Budget.tick b);
  Alcotest.(check bool) "reason is deadline" true
    (Budget.reason b = Some Budget.Deadline);
  (* A work-only budget never trips on time. *)
  let w = Budget.create ~work:1_000_000 () in
  Alcotest.(check bool) "work-only budget ignores the clock" true
    (Budget.tick w)

let test_budget_sub_and_consume () =
  let parent = Budget.create ~work:100 () in
  ignore (Budget.tick ~cost:60 parent);
  let child = Budget.sub ~work_frac:0.5 parent in
  Alcotest.(check (option int)) "child carved from remaining" (Some 20)
    (Budget.remaining_work child);
  (* Child ticks are an allowance, not an account: the parent is only
     charged when the stage ends and consume() settles up. *)
  ignore (Budget.tick ~cost:20 child);
  Alcotest.(check int) "parent unchanged by child ticks" 60
    (Budget.work_used parent);
  Budget.consume parent (Budget.work_used child);
  Alcotest.(check int) "consume settles the child's work" 80
    (Budget.work_used parent);
  ignore (Budget.tick ~cost:1000 parent);
  Alcotest.(check bool) "parent over-consumed" true (Budget.exhausted parent);
  let dead = Budget.sub parent in
  Alcotest.(check bool) "exhausted parent yields exhausted child" false
    (Budget.tick dead)

(* ----- Atomic_io -------------------------------------------------------- *)

module Aio = Fbb_util.Atomic_io

exception Kill
exception Flaky

let read_file path = In_channel.with_open_text path In_channel.input_all

let with_hooks hook pred f =
  Aio.set_fault_hook hook;
  Aio.set_transient_pred pred;
  Fun.protect
    ~finally:(fun () ->
      Aio.set_fault_hook None;
      Aio.set_transient_pred (fun _ -> false))
    f

let test_atomic_write_kill_points () =
  (* Simulate a crash at each phase of the protocol: the destination
     must keep its previous content bit-for-bit and no temp file may
     survive. *)
  let dir = Filename.temp_file "fbb_aio" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let path = Filename.concat dir "target.json" in
  Aio.write_atomic ~path "previous";
  List.iter
    (fun phase ->
      with_hooks
        (Some (fun p _dest -> if p = phase then raise Kill))
        (fun _ -> false)
        (fun () ->
          (match Aio.write_atomic ~path "next" with
          | () ->
            Alcotest.failf "write survived a %s kill" (Aio.phase_name phase)
          | exception Kill -> ());
          Alcotest.(check string)
            (Printf.sprintf "intact after %s kill" (Aio.phase_name phase))
            "previous" (read_file path);
          Alcotest.(check (list string))
            (Printf.sprintf "no temp litter after %s kill"
               (Aio.phase_name phase))
            [ "target.json" ]
            (Array.to_list (Sys.readdir dir))))
    [ Aio.Write; Aio.Fsync; Aio.Rename ];
  Aio.write_atomic ~path "next";
  Alcotest.(check string) "clean write goes through" "next" (read_file path);
  Sys.remove path;
  Sys.rmdir dir

let test_atomic_write_transient_retry () =
  let path = Filename.temp_file "fbb_aio" ".json" in
  let fired = ref 0 in
  with_hooks
    (Some
       (fun p _ ->
         if p = Aio.Write && !fired < 2 then begin
           incr fired;
           raise Flaky
         end))
    (function Flaky -> true | _ -> false)
    (fun () ->
      let before = Aio.retries () in
      Aio.write_atomic ~path "retried";
      Alcotest.(check string) "content lands after retries" "retried"
        (read_file path);
      Alcotest.(check int) "both retries recorded" (before + 2)
        (Aio.retries ()));
  (* A transient that never stops exhausts max_attempts, re-raises, and
     still leaves the previous content intact. *)
  with_hooks
    (Some (fun p _ -> if p = Aio.Write then raise Flaky))
    (function Flaky -> true | _ -> false)
    (fun () ->
      match Aio.write_atomic ~path "never" with
      | () -> Alcotest.fail "expected exhausted retries to raise"
      | exception Flaky ->
        Alcotest.(check string) "previous content intact" "retried"
          (read_file path));
  Sys.remove path

let qcheck_tests =
  let open QCheck in
  (* Fields drawn from a charset biased towards the CSV metacharacters the
     quoting layer has to get right. *)
  let csv_field =
    let gen =
      Gen.(
        string_size ~gen:(oneofl [ 'a'; 'z'; '0'; ','; '"'; '\n'; ' '; '\r' ])
          (int_range 0 8))
    in
    QCheck.make ~print:String.escaped gen
  in
  let csv_table =
    let gen =
      let open Gen in
      int_range 1 4 >>= fun width ->
      let row = list_size (return width) (QCheck.gen csv_field) in
      pair row (list_size (int_range 0 6) row)
    in
    let print (headers, rows) =
      String.concat " | "
        (List.map
           (fun r -> String.concat "," (List.map String.escaped r))
           (headers :: rows))
    in
    QCheck.make ~print gen
  in
  [
    Test.make ~name:"csv render/parse round-trip" ~count:300 csv_table
      (fun (headers, rows) ->
        let c = Fbb_util.Csv.create ~headers in
        List.iter (Fbb_util.Csv.add_row c) rows;
        Fbb_util.Csv.parse (Fbb_util.Csv.render c) = headers :: rows);
    Test.make ~name:"rng int within bounds" ~count:500
      (pair small_int (int_range 1 10_000))
      (fun (seed, n) ->
        let rng = Rng.create ~seed in
        let v = Rng.int rng n in
        v >= 0 && v < n);
    Test.make ~name:"rng uniform in [0,1)" ~count:500 small_int (fun seed ->
        let rng = Rng.create ~seed in
        let v = Rng.uniform rng in
        v >= 0.0 && v < 1.0);
    Test.make ~name:"rng int_in inclusive" ~count:500
      (triple small_int (int_range (-100) 100) (int_range 0 200))
      (fun (seed, lo, span) ->
        let rng = Rng.create ~seed in
        let v = Rng.int_in rng lo (lo + span) in
        v >= lo && v <= lo + span);
    Test.make ~name:"percentile between min and max" ~count:300
      (pair (list_of_size Gen.(int_range 1 40) (float_range (-1e3) 1e3))
         (float_range 0.0 100.0))
      (fun (xs, p) ->
        let a = Array.of_list xs in
        let lo, hi = Stats.min_max a in
        let v = Stats.percentile a p in
        v >= lo -. 1e-9 && v <= hi +. 1e-9);
    Test.make ~name:"mean between min and max" ~count:300
      (list_of_size Gen.(int_range 1 40) (float_range (-1e3) 1e3))
      (fun xs ->
        let a = Array.of_list xs in
        let lo, hi = Stats.min_max a in
        let m = Stats.mean a in
        m >= lo -. 1e-9 && m <= hi +. 1e-9);
  ]

let suite =
  [
    ("rng deterministic", `Quick, test_rng_deterministic);
    ("rng seed sensitivity", `Quick, test_rng_seed_sensitivity);
    ("rng copy", `Quick, test_rng_copy);
    ("rng split", `Quick, test_rng_split);
    ("rng gaussian moments", `Quick, test_rng_gaussian_moments);
    ("rng shuffle is a permutation", `Quick, test_rng_shuffle_permutation);
    ("stats basic", `Quick, test_stats_basic);
    ("stats min_max", `Quick, test_stats_min_max);
    ("stats percentile", `Quick, test_stats_percentile);
    ("stats ratio_pct", `Quick, test_ratio_pct);
    ("texttab render", `Quick, test_texttab_render);
    ("texttab too many cells", `Quick, test_texttab_too_many_cells);
    ("csv quoting", `Quick, test_csv_quoting);
    ("csv parse tricky fields", `Quick, test_csv_parse_tricky);
    ("csv save", `Quick, test_csv_save);
    ("texttab align and rules", `Quick, test_texttab_align);
    ("texttab cells", `Quick, test_cells);
    ("budget unlimited", `Quick, test_budget_unlimited);
    ("budget work limit", `Quick, test_budget_work_limit);
    ("budget zero work", `Quick, test_budget_zero_work);
    ("budget deadline", `Quick, test_budget_deadline);
    ("budget sub and consume", `Quick, test_budget_sub_and_consume);
    ("atomic write kill points", `Quick, test_atomic_write_kill_points);
    ("atomic write transient retry", `Quick, test_atomic_write_transient_retry);
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_tests
