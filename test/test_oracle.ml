(* The exact oracle, the differential harness, and the regression
   corpus. The corpus replay is the contract that every bug the fuzzer
   ever caught stays fixed: cases under test/corpus/ are replayed
   through the full differential run on every test invocation. *)

module Problem = Fbb_core.Problem
module Solution = Fbb_core.Solution
module Heuristic = Fbb_core.Heuristic
module Oracle = Fbb_oracle.Oracle
module Invariant = Fbb_oracle.Invariant
module Case = Fbb_oracle.Case
module Differential = Fbb_oracle.Differential
module Shrink = Fbb_oracle.Shrink

let case ?beta ?max_clusters ?level_stride ?max_paths ~seed ~gates ~rows () =
  Case.make ?beta ?max_clusters ?level_stride ?max_paths ~seed ~gates ~rows ()

(* ----- oracle vs the production solvers --------------------------------- *)

let test_oracle_matches_bb () =
  (* A handful of deterministic small instances: the oracle's optimum
     must coincide with a proved-optimal branch & bound and lower-bound
     the heuristic. *)
  List.iter
    (fun (seed, gates, rows, beta) ->
      let c = case ~beta ~seed ~gates ~rows () in
      let p = Case.build c in
      Alcotest.(check bool)
        (Printf.sprintf "tractable s%d" seed)
        true
        (Oracle.tractable ~max_clusters:2 p);
      match Oracle.solve p with
      | Oracle.Infeasible ->
        Alcotest.failf "s%d unexpectedly infeasible" seed
      | Oracle.Optimal opt ->
        Alcotest.(check (list string))
          (Printf.sprintf "s%d optimum passes the invariant checker" seed)
          []
          (Invariant.check ~reported_leakage_nw:opt.Oracle.leakage_nw p
             ~levels:opt.Oracle.levels);
        let tol = 1e-9 *. Float.max 1.0 opt.Oracle.leakage_nw in
        let bb =
          Fbb_core.Ilp_opt.optimize
            ~config:Fbb_core.Ilp_opt.default_config p
        in
        Alcotest.(check bool)
          (Printf.sprintf "s%d bb proved optimal" seed)
          true bb.Fbb_core.Ilp_opt.proved_optimal;
        (match bb.Fbb_core.Ilp_opt.levels with
        | None -> Alcotest.failf "s%d bb found nothing" seed
        | Some levels ->
          let bleak = Solution.leakage_nw p levels in
          Alcotest.(check bool)
            (Printf.sprintf "s%d bb matches oracle optimum" seed)
            true
            (Float.abs (bleak -. opt.Oracle.leakage_nw) <= tol));
        (match Heuristic.optimize p with
        | None -> Alcotest.failf "s%d heuristic claims infeasible" seed
        | Some h ->
          Alcotest.(check bool)
            (Printf.sprintf "s%d heuristic above oracle optimum" seed)
            true
            (Solution.leakage_nw p h.Heuristic.levels
             >= opt.Oracle.leakage_nw -. tol)))
    [ (11, 60, 3, 0.06); (23, 80, 4, 0.08); (5, 100, 5, 0.05) ]

let test_oracle_infeasible_iff_no_single_level () =
  (* Slowdown far beyond what the deepest bias can compensate: both the
     oracle and the uniform baseline must agree the case is hopeless. *)
  let p = Case.build (case ~beta:0.6 ~seed:3 ~gates:60 ~rows:3 ()) in
  Alcotest.(check bool) "no uniform level" true (Problem.max_single_level p = None);
  Alcotest.(check bool) "oracle infeasible" true (Oracle.solve p = Oracle.Infeasible);
  (* ...and a mild case is feasible on both sides. *)
  let q = Case.build (case ~beta:0.05 ~seed:3 ~gates:60 ~rows:3 ()) in
  Alcotest.(check bool) "uniform level exists" true
    (Problem.max_single_level q <> None);
  Alcotest.(check bool) "oracle optimal" true
    (match Oracle.solve q with Oracle.Optimal _ -> true | _ -> false)

let test_oracle_tractability_gate () =
  let p = Case.build (case ~seed:9 ~gates:150 ~rows:10 ()) in
  Alcotest.(check bool) "10 rows not tractable" true
    (not (Oracle.tractable ~max_clusters:2 p));
  Alcotest.check_raises "solve refuses intractable instances"
    (Invalid_argument "Oracle.solve: instance exceeds the brute-force bounds")
    (fun () -> ignore (Oracle.solve p))

let test_oracle_respects_budget () =
  (* With C=3 allowed the optimum can only improve, and every verdict
     stays within its own budget. *)
  let p = Case.build (case ~seed:17 ~gates:70 ~rows:4 ()) in
  let distinct levels =
    List.length
      (List.sort_uniq compare (Array.to_list levels))
  in
  match Oracle.solve ~max_clusters:2 p, Oracle.solve ~max_clusters:3 p with
  | Oracle.Optimal a, Oracle.Optimal b ->
    Alcotest.(check bool) "C=2 verdict within budget" true
      (distinct a.Oracle.levels <= 2);
    Alcotest.(check bool) "C=3 verdict within budget" true
      (distinct b.Oracle.levels <= 3);
    Alcotest.(check bool) "wider budget never hurts" true
      (b.Oracle.leakage_nw
       <= a.Oracle.leakage_nw +. (1e-9 *. Float.max 1.0 a.Oracle.leakage_nw))
  | _ -> Alcotest.fail "expected both budgets feasible"

(* ----- corpus replay ---------------------------------------------------- *)

let test_corpus_replays_clean () =
  (* cwd is test/ under dune runtest but the project root under
     dune exec; accept either. *)
  let dir = if Sys.file_exists "corpus" then "corpus" else "test/corpus" in
  let corpus = Case.load_dir dir in
  Alcotest.(check bool)
    (Printf.sprintf "corpus holds >= 5 cases (got %d)" (List.length corpus))
    true
    (List.length corpus >= 5);
  List.iter
    (fun (path, c) ->
      let r = Differential.run c in
      if Differential.failed r then
        Alcotest.failf "%s: %s" path
          (String.concat "; " r.Differential.failures))
    corpus

(* ----- case serialization ----------------------------------------------- *)

let test_case_roundtrip () =
  let cases =
    [
      case ~seed:1 ~gates:40 ~rows:2 ();
      case ~beta:0.123 ~max_clusters:3 ~level_stride:2 ~max_paths:7 ~seed:99
        ~gates:512 ~rows:8 ();
    ]
  in
  List.iter
    (fun c ->
      match Case.of_string (Case.to_string c) with
      | Ok c' ->
        Alcotest.(check bool)
          (Printf.sprintf "%s roundtrips" (Case.name c))
          true (c = c')
      | Error m -> Alcotest.failf "%s: %s" (Case.name c) m)
    cases;
  (match Case.of_string "fbbcase 99\nseed 1\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad header accepted");
  (match Case.of_string "fbbcase 1\ngates -4\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "invalid field values accepted");
  Alcotest.(check (list (pair string reject)))
    "missing corpus dir is empty" []
    (Case.load_dir "no-such-directory")

(* ----- shrinking -------------------------------------------------------- *)

let test_shrink_minimizes () =
  (* Failure injected by predicate, so the shrinker's own mechanics are
     tested in isolation: "fails" = rows >= 3 and gates >= 30. The
     minimum under the move set is rows 3 with the smallest reachable
     gate count. *)
  let big = case ~seed:5 ~gates:160 ~rows:6 ~max_paths:40 () in
  let run c =
    if c.Case.rows >= 3 && c.Case.gates >= 30 then [ "injected" ] else []
  in
  let minimized, progress = Shrink.minimize ~run big in
  Alcotest.(check bool) "still failing" true (run minimized <> []);
  Alcotest.(check int) "rows minimized" 3 minimized.Case.rows;
  Alcotest.(check bool) "gates reduced" true (minimized.Case.gates < 60);
  Alcotest.(check bool) "made progress" true (progress.Shrink.steps > 0);
  (* A passing case is returned untouched. *)
  let passing, progress = Shrink.minimize ~run:(fun _ -> []) big in
  Alcotest.(check bool) "nothing to shrink" true
    (passing = big && progress.Shrink.steps = 0);
  (* Build failures do not count as reproductions. *)
  let minimized, _ =
    Shrink.minimize
      ~run:(fun c -> if c.Case.gates < 100 then [ "build: boom" ] else [ "real" ])
      big
  in
  Alcotest.(check bool) "never shrinks into build failures" true
    (minimized.Case.gates >= 100)

(* ----- metamorphic properties, directly --------------------------------- *)

let test_permutation_invariance () =
  let c = case ~seed:29 ~gates:80 ~rows:4 () in
  let p = Case.build c in
  match Oracle.solve p with
  | Oracle.Infeasible -> Alcotest.fail "expected feasible"
  | Oracle.Optimal opt ->
    let n = Problem.num_rows p in
    (* reversal, a permutation the fuzzer's rotation does not cover *)
    let perm = Array.init n (fun i -> n - 1 - i) in
    let q =
      Problem.build ~levels:p.Problem.levels ~beta:c.Case.beta
        (Fbb_place.Placement.permute_rows p.Problem.placement perm)
    in
    (match Oracle.solve q with
    | Oracle.Infeasible -> Alcotest.fail "permutation broke feasibility"
    | Oracle.Optimal opt' ->
      Alcotest.(check bool) "optimum invariant under row reversal" true
        (Float.abs (opt'.Oracle.leakage_nw -. opt.Oracle.leakage_nw)
         <= 1e-9 *. Float.max 1.0 opt.Oracle.leakage_nw))

(* ----- heuristic C=1 collapses to Single BB (satellite) ------------------ *)

let test_single_cluster_equals_single_bb =
  QCheck.Test.make ~count:25 ~name:"heuristic C=1 = max_single_level"
    QCheck.(make Gen.(tup3 (int_range 0 10_000) (int_range 30 120) (int_range 2 6)))
    (fun (seed, gates, rows) ->
      let p = Case.build (case ~beta:0.07 ~seed ~gates ~rows ()) in
      match Heuristic.optimize ~max_clusters:1 p, Problem.max_single_level p with
      | None, None -> true
      | Some _, None | None, Some _ ->
        QCheck.Test.fail_report "feasibility disagreement"
      | Some h, Some j ->
        let uniform = Array.make (Problem.num_rows p) j in
        (* With one cluster allowed, no assignment can beat the best
           uniform level, and the heuristic must find exactly it. *)
        h.Heuristic.levels = uniform
        && Float.abs
             (h.Heuristic.leakage_nw -. Solution.leakage_nw p uniform)
           <= 1e-9 *. Float.max 1.0 h.Heuristic.leakage_nw)

let suite =
  [
    ("oracle matches proved-optimal bb", `Quick, test_oracle_matches_bb);
    ( "oracle infeasible iff no single level",
      `Quick,
      test_oracle_infeasible_iff_no_single_level );
    ("oracle tractability gate", `Quick, test_oracle_tractability_gate);
    ("oracle respects cluster budget", `Quick, test_oracle_respects_budget);
    ("corpus replays clean", `Quick, test_corpus_replays_clean);
    ("case serialization roundtrip", `Quick, test_case_roundtrip);
    ("shrinker minimizes greedily", `Quick, test_shrink_minimizes);
    ("optimum invariant under row reversal", `Quick, test_permutation_invariance);
    QCheck_alcotest.to_alcotest test_single_cluster_equals_single_bb;
  ]
